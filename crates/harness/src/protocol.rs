//! Protocol drivers: one function per [`ProtocolSpec`] that takes a
//! concrete `(graph, faulty, adversary, network, seed)` and produces the
//! per-process decision vector the oracles judge.

use std::collections::BTreeMap;

use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg, EquivocatingLeader};
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_obs::causal::{CausalGraph, ProvenanceLog};
use scup_scp::{NodeStats, Value};
use scup_sim::adversary::{CrashActor, EchoActor, SilentActor};
use scup_sim::{NetworkConfig, ProcessStats, Simulation, TraceEvent};
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::sink_detector::GetSinkMode;

use crate::adversary::AdversaryKind;
use crate::scenario::{ChurnSpec, FaultSpec, NetworkSpec, ProtocolSpec};

/// What one protocol execution produced.
#[derive(Debug, Clone)]
pub struct ProtocolOutput {
    /// Per-process proposals.
    pub inputs: Vec<Value>,
    /// Per-process decisions (`None` = undecided or faulty).
    pub decisions: Vec<Option<Value>>,
    /// Messages sent across all phases.
    pub messages_sent: u64,
    /// Messages delivered across all phases.
    pub messages_delivered: u64,
    /// Bytes (per `size_hint`) handed to the network across all phases.
    pub bytes_sent: u64,
    /// Timers fired across all phases.
    pub timers_fired: u64,
    /// Simulated end time of the last phase.
    pub end_ticks: u64,
    /// Per-process traffic breakdown, summed across phases (indexed by
    /// process id).
    pub per_process: Vec<ProcessStats>,
    /// Per-node SCP counters (message traffic, ballot-phase
    /// confirmations); empty for protocols without an SCP phase.
    pub node_stats: Vec<NodeStats>,
    /// Messages lost to the fault plan across all phases (0 without one).
    pub messages_dropped: u64,
    /// Extra deliveries injected by duplication faults.
    pub messages_duplicated: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Recovery events executed.
    pub recoveries: u64,
    /// Messages re-sent by the protocol's retransmission layer.
    pub retransmissions: u64,
    /// Durability-oracle findings: a correct process whose post-recovery
    /// journal contradicts its pre-crash pledges (always a safety bug,
    /// regardless of oracle mode).
    pub pledge_violations: Vec<String>,
    /// log₂ histogram of retransmission delays (bucket `k` counts
    /// retransmit timers that fired `[2^k, 2^(k+1))` ticks after being
    /// armed), summed across phases.
    pub retransmit_delay_buckets: Vec<u64>,
    /// Per-link fault-plane drop counters, keyed `(from, to)`, summed
    /// across phases.
    pub link_drops: BTreeMap<(u32, u32), u64>,
    /// Join events executed by the churn plane (0 without one), summed
    /// across phases.
    pub joins: u64,
    /// Leave events executed by the churn plane, summed across phases.
    pub departures: u64,
    /// Messages lost because an endpoint was dormant or departed; a
    /// subset of `messages_dropped`, summed across phases.
    pub churn_drops: u64,
    /// Causal event graph of the consensus phase (disabled unless the run
    /// asked for forensics).
    pub causal: CausalGraph,
    /// Per-process decision-provenance logs of the consensus phase
    /// (disabled unless the run asked for forensics).
    pub provenance: Vec<ProvenanceLog>,
}

/// Runs one protocol execution. `inputs` must have one proposal per
/// process (see [`Scenario::resolved_inputs`](crate::Scenario::resolved_inputs)).
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn execute(
    protocol: ProtocolSpec,
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    fault_plan: &FaultSpec,
    churn: &ChurnSpec,
    inputs: Vec<Value>,
    seed: u64,
) -> ProtocolOutput {
    execute_traced(
        protocol, kg, f, faulty, adversary, network, fault_plan, churn, inputs, seed, false,
    )
    .0
}

/// Like [`execute`], but when `trace` is on also returns the simulator
/// event traces of the two phases (knowledge-increase, consensus) for
/// Perfetto export. Tracing renders every message payload to a string —
/// use it for one-off exports, not inside sampling loops. Phase traces
/// are on independent sim clocks (each phase restarts at tick 0).
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn execute_traced(
    protocol: ProtocolSpec,
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    fault_plan: &FaultSpec,
    churn: &ChurnSpec,
    inputs: Vec<Value>,
    seed: u64,
    trace: bool,
) -> (ProtocolOutput, Vec<TraceEvent>, Vec<TraceEvent>) {
    execute_observed(
        protocol, kg, f, faulty, adversary, network, fault_plan, churn, inputs, seed, trace, false,
    )
}

/// Like [`execute_traced`], with an additional `forensics` switch that
/// records the consensus phase's causal event graph and per-node
/// decision provenance into the output. Forensics never perturbs the
/// schedule: a forensics-on run produces bit-identical decisions,
/// reports, and traces to a forensics-off run.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn execute_observed(
    protocol: ProtocolSpec,
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    fault_plan: &FaultSpec,
    churn: &ChurnSpec,
    inputs: Vec<Value>,
    seed: u64,
    trace: bool,
    forensics: bool,
) -> (ProtocolOutput, Vec<TraceEvent>, Vec<TraceEvent>) {
    debug_assert_eq!(inputs.len(), kg.n());
    match protocol {
        ProtocolSpec::StellarMinimal => {
            let mut config = pipeline_config(adversary, network, fault_plan, inputs, seed);
            config.trace = trace;
            config.forensics = forensics;
            config.churn = churn.to_plan(kg);
            let outcome = consensus::run_end_to_end(kg, f, faulty, &config);
            let mut combined = outcome.sd_report.clone();
            combined.absorb(&outcome.scp_report);
            let retransmissions = outcome.node_stats.iter().map(|s| s.retransmissions).sum();
            let pledge_violations = scp_pledge_violations(kg, faulty, &outcome.scp_journals);
            let output = ProtocolOutput {
                inputs: outcome.inputs,
                decisions: outcome.decisions,
                messages_sent: combined.messages_sent,
                messages_delivered: combined.messages_delivered,
                bytes_sent: combined.bytes_sent,
                timers_fired: combined.timers_fired,
                end_ticks: outcome.scp_report.end_time.ticks(),
                per_process: combined.per_process,
                node_stats: outcome.node_stats,
                messages_dropped: combined.messages_dropped,
                messages_duplicated: combined.messages_duplicated,
                crashes: combined.crashes,
                recoveries: combined.recoveries,
                retransmissions,
                pledge_violations,
                retransmit_delay_buckets: combined.retransmit_delay_buckets,
                link_drops: combined.link_drops,
                joins: combined.joins,
                departures: combined.departures,
                churn_drops: combined.churn_drops,
                causal: outcome.scp_causal,
                provenance: outcome.scp_provenance,
            };
            (output, outcome.sd_trace, outcome.scp_trace)
        }
        ProtocolSpec::StellarLocal(strategy) => {
            let mut config = pipeline_config(adversary, network, fault_plan, inputs, seed);
            config.trace = trace;
            config.forensics = forensics;
            config.churn = churn.to_plan(kg);
            let outcome = consensus::run_local_slices_pipeline(kg, f, faulty, strategy, &config);
            let retransmissions = outcome.node_stats.iter().map(|s| s.retransmissions).sum();
            let pledge_violations = scp_pledge_violations(kg, faulty, &outcome.scp_journals);
            let output = ProtocolOutput {
                inputs: outcome.inputs,
                decisions: outcome.decisions,
                messages_sent: outcome.scp_report.messages_sent,
                messages_delivered: outcome.scp_report.messages_delivered,
                bytes_sent: outcome.scp_report.bytes_sent,
                timers_fired: outcome.scp_report.timers_fired,
                end_ticks: outcome.scp_report.end_time.ticks(),
                per_process: outcome.scp_report.per_process.clone(),
                node_stats: outcome.node_stats,
                messages_dropped: outcome.scp_report.messages_dropped,
                messages_duplicated: outcome.scp_report.messages_duplicated,
                crashes: outcome.scp_report.crashes,
                recoveries: outcome.scp_report.recoveries,
                retransmissions,
                pledge_violations,
                retransmit_delay_buckets: outcome.scp_report.retransmit_delay_buckets.clone(),
                link_drops: outcome.scp_report.link_drops.clone(),
                joins: outcome.scp_report.joins,
                departures: outcome.scp_report.departures,
                churn_drops: outcome.scp_report.churn_drops,
                causal: outcome.scp_causal,
                provenance: outcome.scp_provenance,
            };
            (output, Vec::new(), outcome.scp_trace)
        }
        ProtocolSpec::BftCup => {
            let (output, events) = run_bftcup(
                kg, f, faulty, adversary, network, fault_plan, churn, inputs, seed, trace,
                forensics,
            );
            (output, Vec::new(), events)
        }
    }
}

/// Re-reads each correct process's SCP journal through the durability
/// oracle, prefixing findings with the process id.
fn scp_pledge_violations(
    kg: &KnowledgeGraph,
    faulty: &ProcessSet,
    journals: &[scup_sim::MemJournal],
) -> Vec<String> {
    kg.processes()
        .filter(|i| !faulty.contains(*i))
        .flat_map(|i| {
            journals
                .get(i.index())
                .map(|j| scup_scp::journal_contradictions(j))
                .unwrap_or_default()
                .into_iter()
                .map(move |v| format!("process {i}: {v}"))
        })
        .collect()
}

fn pipeline_config(
    adversary: AdversaryKind,
    network: &NetworkSpec,
    fault_plan: &FaultSpec,
    inputs: Vec<Value>,
    seed: u64,
) -> EndToEndConfig {
    EndToEndConfig {
        seed,
        gst: network.gst,
        delta: network.delta,
        get_sink_mode: GetSinkMode::Direct,
        adversary: adversary.to_scp(),
        inputs: Some(inputs),
        max_ticks: network.max_ticks,
        trace: false,
        faults: fault_plan.to_plan(),
        retransmit: fault_plan.retransmit_config(network),
        // Callers overwrite with the scenario's plan; the zero default
        // keeps `pipeline_config` signature-stable.
        churn: scup_sim::ChurnPlan::default(),
        forensics: false,
    }
}

/// The BFT-CUP baseline (Theorem 1): discovery + quorum consensus in the
/// sink, dissemination to the outside.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
fn run_bftcup(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    fault_plan: &FaultSpec,
    churn: &ChurnSpec,
    inputs: Vec<Value>,
    seed: u64,
    trace: bool,
    forensics: bool,
) -> (ProtocolOutput, Vec<TraceEvent>) {
    let net = NetworkConfig::partially_synchronous(network.gst, network.delta, seed);
    let mut sim: Simulation<BftMsg> = Simulation::new(kg.clone(), net);
    if trace {
        sim.enable_trace();
    }
    if forensics {
        sim.enable_causal();
    }
    let plan = fault_plan.to_plan();
    if !plan.is_zero() {
        sim.set_fault_plan(plan);
    }
    let churn_plan = churn.to_plan(kg);
    // Like planned recoveries below, planned churn must actually execute
    // before the sim may stop on all-decided: a leave scheduled after the
    // last decision would otherwise silently never happen, and the
    // scenario that ran would not be the scenario that was written.
    let want_joins = churn_plan.joins.len() as u64;
    let want_leaves = churn_plan.leaves.len() as u64;
    if !churn_plan.is_zero() {
        sim.set_churn_plan(churn_plan);
    }
    // View timeout must comfortably exceed pre-GST delays or view changes
    // churn; 500 matches the workspace's experiment binaries.
    let mut bft_config = BftConfig::new(f, (network.delta * 4).max(500));
    bft_config.retransmit = fault_plan.retransmit_config(network);

    // The `stale_joiner` exhibit: the first scheduled joiner boots with a
    // pre-baked decision for a value nobody proposed — a deliberately
    // misconfigured node the validity oracle must flag under `strong`
    // (and `external`) validity.
    let stale = churn
        .stale_joiner
        .then(|| churn.joins.first().copied().map(ProcessId::new))
        .flatten()
        .filter(|j| !faulty.contains(*j));
    let unproposed = inputs.iter().copied().max().unwrap_or(0) + 999;

    for i in kg.processes() {
        if stale == Some(i) {
            sim.add_actor(Box::new(
                BftCupActor::new(kg.pd(i).clone(), inputs[i.index()], bft_config.clone())
                    .with_forced_decision(unproposed),
            ));
        } else if faulty.contains(i) {
            match adversary {
                AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                AdversaryKind::Crash { after } => sim.add_actor(Box::new(CrashActor::new(
                    BftCupActor::new(kg.pd(i).clone(), inputs[i.index()], bft_config.clone()),
                    after,
                ))),
                // BFT-CUP has no slices to forge; both value-injecting
                // kinds map to the equivocating leader.
                AdversaryKind::Equivocate | AdversaryKind::ForgedSlice => sim.add_actor(Box::new(
                    EquivocatingLeader::new(kg.pd(i).clone(), f, (u64::MAX - 1, u64::MAX)),
                )),
            };
        } else {
            sim.add_actor(Box::new(BftCupActor::new(
                kg.pd(i).clone(),
                inputs[i.index()],
                bft_config.clone(),
            )));
        }
    }

    if forensics {
        for i in kg.processes() {
            if let Some(actor) = sim.actor_as_mut::<BftCupActor>(i) {
                actor.enable_provenance();
            }
        }
    }
    let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
    // Planned crash–recover cycles must actually run (and the recovered
    // node rejoin) before the sim may stop on all-decided.
    let want_recoveries = fault_plan.planned_recoveries();
    // Departing processes owe no decision — the churn plan removes them
    // mid-run, so waiting on them would burn the whole tick budget.
    let departing = churn.departed();
    let report = sim.run_while(
        |s| {
            s.report().recoveries < want_recoveries
                || s.report().joins < want_joins
                || s.report().departures < want_leaves
                || !correct
                    .iter()
                    .filter(|i| !departing.contains(**i))
                    .all(|&i| {
                        s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                    })
        },
        network.max_ticks,
    );
    let decisions: Vec<Option<Value>> = kg
        .processes()
        .map(|i| {
            sim.actor_as::<BftCupActor>(i)
                .and_then(BftCupActor::decision)
        })
        .collect();
    let retransmissions = correct
        .iter()
        .filter_map(|&i| sim.actor_as::<BftCupActor>(i))
        .map(BftCupActor::retransmissions)
        .sum();
    let pledge_violations: Vec<String> = correct
        .iter()
        .flat_map(|&i| {
            scup_cup::bftcup::journal_contradictions(sim.journal(i))
                .into_iter()
                .map(move |v| format!("process {i}: {v}"))
        })
        .collect();

    let provenance = kg
        .processes()
        .map(|i| {
            sim.actor_as::<BftCupActor>(i)
                .map(|a| a.provenance().clone())
                .unwrap_or_default()
        })
        .collect();

    let output = ProtocolOutput {
        inputs,
        decisions,
        messages_sent: report.messages_sent,
        messages_delivered: report.messages_delivered,
        bytes_sent: report.bytes_sent,
        timers_fired: report.timers_fired,
        end_ticks: report.end_time.ticks(),
        per_process: report.per_process.clone(),
        // BFT-CUP has no SCP ballot machinery to count.
        node_stats: Vec::new(),
        messages_dropped: report.messages_dropped,
        messages_duplicated: report.messages_duplicated,
        crashes: report.crashes,
        recoveries: report.recoveries,
        retransmissions,
        pledge_violations,
        retransmit_delay_buckets: report.retransmit_delay_buckets.clone(),
        link_drops: report.link_drops.clone(),
        joins: report.joins,
        departures: report.departures,
        churn_drops: report.churn_drops,
        causal: sim.causal().clone(),
        provenance,
    };
    let events = sim.trace().events().to_vec();
    (output, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;
    use crate::topology;
    use stellar_cup::attempts::LocalSliceStrategy;

    #[test]
    fn stellar_minimal_on_fig2_decides() {
        let (kg, _) = topology::instantiate(&TopologySpec::Fig2, 1, 0);
        let faulty = ProcessSet::from_ids([5]);
        let out = execute(
            ProtocolSpec::StellarMinimal,
            &kg,
            1,
            &faulty,
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            &FaultSpec::default(),
            &ChurnSpec::default(),
            (0..7).map(|i| 100 + i as Value).collect(),
            0,
        );
        for i in 0..7usize {
            if i == 5 {
                continue;
            }
            assert!(out.decisions[i].is_some(), "process {i} must decide");
        }
        assert!(out.messages_sent > 0 && out.end_ticks > 0);
    }

    #[test]
    fn bftcup_on_fig1_decides() {
        // Fig. 1 is 1-OSR: process 2 (id 1) has a single disjoint path to
        // the sink, so BFT-CUP is only guaranteed fault-free (f = 0).
        let (kg, _) = topology::instantiate(&TopologySpec::Fig1, 0, 3);
        let out = execute(
            ProtocolSpec::BftCup,
            &kg,
            0,
            &ProcessSet::new(),
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            &FaultSpec::default(),
            &ChurnSpec::default(),
            (0..8).map(|i| 100 + i as Value).collect(),
            3,
        );
        let decided: Vec<Value> = out.decisions.iter().flatten().copied().collect();
        assert_eq!(decided.len(), 8, "all processes decide");
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stellar_local_runs() {
        let (kg, _) = topology::instantiate(&TopologySpec::Fig2, 1, 1);
        let out = execute(
            ProtocolSpec::StellarLocal(LocalSliceStrategy::AllButOne),
            &kg,
            1,
            &ProcessSet::new(),
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            &FaultSpec::default(),
            &ChurnSpec::default(),
            (0..7).map(|i| 100 + i as Value).collect(),
            1,
        );
        assert_eq!(out.inputs.len(), 7);
    }
}
