//! Protocol drivers: one function per [`ProtocolSpec`] that takes a
//! concrete `(graph, faulty, adversary, network, seed)` and produces the
//! per-process decision vector the oracles judge.

use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg, EquivocatingLeader};
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_scp::Value;
use scup_sim::adversary::{CrashActor, EchoActor, SilentActor};
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::sink_detector::GetSinkMode;

use crate::adversary::AdversaryKind;
use crate::scenario::{NetworkSpec, ProtocolSpec};

/// What one protocol execution produced.
#[derive(Debug, Clone)]
pub struct ProtocolOutput {
    /// Per-process proposals.
    pub inputs: Vec<Value>,
    /// Per-process decisions (`None` = undecided or faulty).
    pub decisions: Vec<Option<Value>>,
    /// Messages sent across all phases.
    pub messages_sent: u64,
    /// Messages delivered across all phases.
    pub messages_delivered: u64,
    /// Simulated end time of the last phase.
    pub end_ticks: u64,
}

/// Runs one protocol execution. `inputs` must have one proposal per
/// process (see [`Scenario::resolved_inputs`](crate::Scenario::resolved_inputs)).
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn execute(
    protocol: ProtocolSpec,
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    inputs: Vec<Value>,
    seed: u64,
) -> ProtocolOutput {
    debug_assert_eq!(inputs.len(), kg.n());
    match protocol {
        ProtocolSpec::StellarMinimal => {
            let config = pipeline_config(adversary, network, inputs, seed);
            let outcome = consensus::run_end_to_end(kg, f, faulty, &config);
            ProtocolOutput {
                inputs: outcome.inputs,
                decisions: outcome.decisions,
                messages_sent: outcome.sd_report.messages_sent + outcome.scp_report.messages_sent,
                messages_delivered: outcome.sd_report.messages_delivered
                    + outcome.scp_report.messages_delivered,
                end_ticks: outcome.scp_report.end_time.ticks(),
            }
        }
        ProtocolSpec::StellarLocal(strategy) => {
            let config = pipeline_config(adversary, network, inputs, seed);
            let outcome = consensus::run_local_slices_pipeline(kg, f, faulty, strategy, &config);
            ProtocolOutput {
                inputs: outcome.inputs,
                decisions: outcome.decisions,
                messages_sent: outcome.scp_report.messages_sent,
                messages_delivered: outcome.scp_report.messages_delivered,
                end_ticks: outcome.scp_report.end_time.ticks(),
            }
        }
        ProtocolSpec::BftCup => run_bftcup(kg, f, faulty, adversary, network, inputs, seed),
    }
}

fn pipeline_config(
    adversary: AdversaryKind,
    network: &NetworkSpec,
    inputs: Vec<Value>,
    seed: u64,
) -> EndToEndConfig {
    EndToEndConfig {
        seed,
        gst: network.gst,
        delta: network.delta,
        get_sink_mode: GetSinkMode::Direct,
        adversary: adversary.to_scp(),
        inputs: Some(inputs),
        max_ticks: network.max_ticks,
    }
}

/// The BFT-CUP baseline (Theorem 1): discovery + quorum consensus in the
/// sink, dissemination to the outside.
fn run_bftcup(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    adversary: AdversaryKind,
    network: &NetworkSpec,
    inputs: Vec<Value>,
    seed: u64,
) -> ProtocolOutput {
    let net = NetworkConfig::partially_synchronous(network.gst, network.delta, seed);
    let mut sim: Simulation<BftMsg> = Simulation::new(kg.clone(), net);
    // View timeout must comfortably exceed pre-GST delays or view changes
    // churn; 500 matches the workspace's experiment binaries.
    let bft_config = BftConfig::new(f, (network.delta * 4).max(500));

    for i in kg.processes() {
        if faulty.contains(i) {
            match adversary {
                AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                AdversaryKind::Crash { after } => sim.add_actor(Box::new(CrashActor::new(
                    BftCupActor::new(kg.pd(i).clone(), inputs[i.index()], bft_config.clone()),
                    after,
                ))),
                // BFT-CUP has no slices to forge; both value-injecting
                // kinds map to the equivocating leader.
                AdversaryKind::Equivocate | AdversaryKind::ForgedSlice => sim.add_actor(Box::new(
                    EquivocatingLeader::new(kg.pd(i).clone(), f, (u64::MAX - 1, u64::MAX)),
                )),
            };
        } else {
            sim.add_actor(Box::new(BftCupActor::new(
                kg.pd(i).clone(),
                inputs[i.index()],
                bft_config.clone(),
            )));
        }
    }

    let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
    let report = sim.run_while(
        |s| {
            !correct.iter().all(|&i| {
                s.actor_as::<BftCupActor>(i)
                    .is_some_and(|a| a.decision().is_some())
            })
        },
        network.max_ticks,
    );
    let decisions = kg
        .processes()
        .map(|i| {
            sim.actor_as::<BftCupActor>(i)
                .and_then(BftCupActor::decision)
        })
        .collect();

    ProtocolOutput {
        inputs,
        decisions,
        messages_sent: report.messages_sent,
        messages_delivered: report.messages_delivered,
        end_ticks: report.end_time.ticks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;
    use crate::topology;
    use stellar_cup::attempts::LocalSliceStrategy;

    #[test]
    fn stellar_minimal_on_fig2_decides() {
        let (kg, _) = topology::instantiate(&TopologySpec::Fig2, 1, 0);
        let faulty = ProcessSet::from_ids([5]);
        let out = execute(
            ProtocolSpec::StellarMinimal,
            &kg,
            1,
            &faulty,
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            (0..7).map(|i| 100 + i as Value).collect(),
            0,
        );
        for i in 0..7usize {
            if i == 5 {
                continue;
            }
            assert!(out.decisions[i].is_some(), "process {i} must decide");
        }
        assert!(out.messages_sent > 0 && out.end_ticks > 0);
    }

    #[test]
    fn bftcup_on_fig1_decides() {
        // Fig. 1 is 1-OSR: process 2 (id 1) has a single disjoint path to
        // the sink, so BFT-CUP is only guaranteed fault-free (f = 0).
        let (kg, _) = topology::instantiate(&TopologySpec::Fig1, 0, 3);
        let out = execute(
            ProtocolSpec::BftCup,
            &kg,
            0,
            &ProcessSet::new(),
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            (0..8).map(|i| 100 + i as Value).collect(),
            3,
        );
        let decided: Vec<Value> = out.decisions.iter().flatten().copied().collect();
        assert_eq!(decided.len(), 8, "all processes decide");
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stellar_local_runs() {
        let (kg, _) = topology::instantiate(&TopologySpec::Fig2, 1, 1);
        let out = execute(
            ProtocolSpec::StellarLocal(LocalSliceStrategy::AllButOne),
            &kg,
            1,
            &ProcessSet::new(),
            AdversaryKind::Silent,
            &NetworkSpec::default(),
            (0..7).map(|i| 100 + i as Value).collect(),
            1,
        );
        assert_eq!(out.inputs.len(), 7);
    }
}
