//! Invariant oracles: agreement, validity, termination — judged against
//! the `stellar-cup` / `scup-graph` predicates rather than re-derived.
//!
//! The oracles separate the three classical consensus properties so a
//! report can say *which* one broke:
//!
//! - **termination** — every correct process decided within the horizon;
//! - **agreement** — no two correct processes decided differently (checked
//!   even on partial termination);
//! - **validity** — the decided value was proposed by a correct process.
//!   Only judged when the adversary cannot inject values
//!   ([`AdversaryKind::preserves_validity`]); otherwise recorded as
//!   not-applicable.
//!
//! The **premise** is the paper's structural precondition (Theorem 1 /
//! Theorem 5): the knowledge graph is Byzantine-safe for the actual faulty
//! set and the sink keeps at least `2f + 1` correct members. Under
//! [`OracleMode::Conditional`](crate::scenario::OracleMode::Conditional) a
//! violation only fails the run when the premise held — exactly the
//! implication the theorems state.

use scup_graph::{kosr, sink, KnowledgeGraph, ProcessId, ProcessSet};
use scup_scp::Value;
use stellar_cup::theorems;

use crate::adversary::AdversaryKind;
use crate::scenario::{OracleMode, ValidityMode};

/// The oracle verdict for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Every correct process decided.
    pub termination: bool,
    /// Whether termination is *demanded*: `false` when the scenario's
    /// fault plan never heals (an unbounded loss window, a partition with
    /// no end, a crash without recovery). Safety oracles apply either
    /// way — graceful degradation means a faulted system may stall but
    /// must never contradict itself.
    pub termination_required: bool,
    /// All correct decisions are equal.
    pub agreement: bool,
    /// Decided value was proposed by a correct process; `None` when the
    /// adversary may inject values (not judged).
    pub validity: Option<bool>,
    /// No recovered process contradicted the pledges it journaled before
    /// crashing (vacuously `true` without crash faults).
    pub pledges_ok: bool,
    /// The structural premise of the paper's positive theorems held for
    /// this graph and faulty set.
    pub premise: bool,
    /// Human-readable descriptions of each violation.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// `true` when all applicable oracles hold: safety (agreement,
    /// validity, pledge durability) unconditionally, termination only
    /// when the fault plan heals.
    pub fn holds(&self) -> bool {
        (self.termination || !self.termination_required)
            && self.agreement
            && self.validity.unwrap_or(true)
            && self.pledges_ok
    }

    /// Whether this run passes under the given oracle mode.
    pub fn passes(&self, mode: OracleMode) -> bool {
        match mode {
            OracleMode::Require => self.holds(),
            OracleMode::Conditional => !self.premise || self.holds(),
            OracleMode::Observe => true,
        }
    }
}

/// Evaluates the oracles for one fault-free run (termination required,
/// no durability findings to judge).
///
/// `decisions[i]` is process `i`'s decided value (`None` when undecided or
/// faulty); `inputs[i]` its proposal.
pub fn evaluate(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    inputs: &[Value],
    decisions: &[Option<Value>],
    adversary: AdversaryKind,
) -> InvariantReport {
    evaluate_degraded(kg, f, faulty, inputs, decisions, adversary, true, &[])
}

/// Evaluates the oracles for one run under a fault plan: the
/// graceful-degradation contract. `termination_required` is `false` when
/// the plan never heals (the run may stall without failing);
/// `pledge_violations` are the durability oracle's findings — each one is
/// a safety violation no mode short of `observe` forgives.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn evaluate_degraded(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    inputs: &[Value],
    decisions: &[Option<Value>],
    adversary: AdversaryKind,
    termination_required: bool,
    pledge_violations: &[String],
) -> InvariantReport {
    evaluate_churned(
        kg,
        f,
        faulty,
        &ProcessSet::new(),
        inputs,
        decisions,
        adversary,
        termination_required,
        pledge_violations,
        ValidityMode::Strong,
    )
}

/// The full oracle: [`evaluate_degraded`] extended with membership churn
/// and validity variants.
///
/// `departed` are the processes a [`ChurnSpec`](crate::scenario::ChurnSpec)
/// removed for good: they are not owed termination (they left), their
/// pre-departure decisions still count for agreement (safety survives the
/// exit), and the structural premise is judged as if they were faulty —
/// a sink member that left weakens the graph exactly like one that
/// failed. `validity` picks the variant of the validity oracle (see
/// [`ValidityMode`]); none of the variants is judged when the adversary
/// can inject values.
#[allow(clippy::too_many_arguments)] // mirrors the scenario's fields
pub fn evaluate_churned(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    departed: &ProcessSet,
    inputs: &[Value],
    decisions: &[Option<Value>],
    adversary: AdversaryKind,
    termination_required: bool,
    pledge_violations: &[String],
    validity_mode: ValidityMode,
) -> InvariantReport {
    let mut violations = Vec::new();
    let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();

    // Termination — owed by correct processes that stayed. A departed
    // process left the system; demanding its decision would make every
    // leave-before-decide plan a liveness violation.
    let undecided: Vec<ProcessId> = correct
        .iter()
        .copied()
        .filter(|i| !departed.contains(*i) && decisions[i.index()].is_none())
        .collect();
    let termination = undecided.is_empty();
    if !termination && termination_required {
        violations.push(format!(
            "termination: {} of {} correct processes undecided ({})",
            undecided.len(),
            correct.len(),
            join_ids(&undecided)
        ));
    }

    // Agreement over the decisions that exist — departed included: a
    // decision taken before leaving must not contradict the stayers'.
    let mut decided: Vec<(ProcessId, Value)> = correct
        .iter()
        .copied()
        .filter_map(|i| decisions[i.index()].map(|v| (i, v)))
        .collect();
    decided.sort_by_key(|&(_, v)| v);
    let agreement = decided.windows(2).all(|w| w[0].1 == w[1].1);
    if !agreement {
        let (lo, hi) = (decided.first().unwrap(), decided.last().unwrap());
        violations.push(format!(
            "agreement: {} decided {} but {} decided {}",
            lo.0, lo.1, hi.0, hi.1
        ));
    }

    // Validity, when the adversary cannot have injected values. A
    // fail-stop process proposes honestly before crashing, so under the
    // crash adversary its input is a legitimate decision too; a silent
    // process never transmitted its proposal at all.
    let validity = if adversary.preserves_validity() {
        let crash = matches!(adversary, AdversaryKind::Crash { .. });
        let ok = match validity_mode {
            ValidityMode::Strong => decided.iter().all(|&(_, v)| {
                inputs.iter().enumerate().any(|(i, &input)| {
                    input == v && (crash || !faulty.contains(ProcessId::new(i as u32)))
                })
            }),
            ValidityMode::Weak => {
                // Binding only when the correct proposals are unanimous.
                let mut correct_inputs = correct.iter().map(|i| inputs[i.index()]);
                match correct_inputs.next() {
                    Some(first) if correct_inputs.all(|v| v == first) => {
                        decided.iter().all(|&(_, v)| v == first)
                    }
                    _ => true,
                }
            }
            ValidityMode::External => {
                // The legitimacy predicate: the value was somebody's
                // proposal, faulty proposers included.
                decided.iter().all(|&(_, v)| inputs.contains(&v))
            }
        };
        if !ok {
            violations.push(format!(
                "validity ({}): a decided value fails the variant's legitimacy rule",
                validity_mode.name()
            ));
        }
        Some(ok)
    } else {
        None
    };

    // Durability: a recovered process must honor its pre-crash pledges.
    let pledges_ok = pledge_violations.is_empty();
    for v in pledge_violations {
        violations.push(format!("durability: {v}"));
    }

    // Structural premise, straight from the scup predicates. Departed
    // processes count against it like faulty ones: the theorems speak
    // about the processes still participating.
    let gone = faulty.union(departed);
    let all = kg.graph().vertex_set();
    let correct_set = all.difference(&gone);
    let premise = kosr::satisfies_theorem1(kg.graph(), f, &gone)
        && sink::unique_sink(kg.graph())
            .is_some_and(|v_sink| theorems::sink_has_enough_correct(&v_sink, &correct_set, f));

    InvariantReport {
        termination,
        termination_required,
        agreement,
        validity,
        pledges_ok,
        premise,
        violations,
    }
}

fn join_ids(ids: &[ProcessId]) -> String {
    ids.iter()
        .map(|i| i.as_u32().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    fn fig2_inputs() -> Vec<Value> {
        (0..7).map(|i| 100 + i as Value).collect()
    }

    #[test]
    fn clean_run_passes_everything() {
        let kg = generators::fig2();
        let faulty = ProcessSet::from_ids([5]);
        let decisions: Vec<Option<Value>> = (0..7)
            .map(|i| if i == 5 { None } else { Some(100) })
            .collect();
        let r = evaluate(
            &kg,
            1,
            &faulty,
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
        );
        assert!(r.termination && r.agreement);
        assert_eq!(r.validity, Some(true));
        assert!(r.premise);
        assert!(r.holds() && r.violations.is_empty());
        assert!(r.passes(OracleMode::Require));
    }

    #[test]
    fn disagreement_is_caught_and_described() {
        let kg = generators::fig2();
        let decisions: Vec<Option<Value>> = vec![
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(2),
            Some(2),
            Some(2),
        ];
        let r = evaluate(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
        );
        assert!(!r.agreement);
        assert!(r.violations.iter().any(|v| v.starts_with("agreement:")));
        assert!(!r.passes(OracleMode::Require));
        assert!(r.passes(OracleMode::Observe));
    }

    #[test]
    fn missing_decision_breaks_termination_only() {
        let kg = generators::fig2();
        let mut decisions = vec![Some(100); 7];
        decisions[2] = None;
        let r = evaluate(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
        );
        assert!(!r.termination);
        assert!(r.agreement);
    }

    #[test]
    fn validity_not_judged_for_injecting_adversaries() {
        let kg = generators::fig2();
        // Everyone decided a value nobody correct proposed.
        let decisions = vec![Some(u64::MAX); 7];
        let r = evaluate(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Equivocate,
        );
        assert_eq!(r.validity, None);
        assert!(r.holds(), "agreement+termination hold; validity N/A");
        let r2 = evaluate(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
        );
        assert_eq!(r2.validity, Some(false));
        assert!(!r2.holds());
    }

    #[test]
    fn premise_fails_on_partitioned_graphs() {
        // Two disjoint sinks: no unique sink, premise must be false, and
        // conditional mode must not fail the run.
        let g = scup_graph::DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let kg = KnowledgeGraph::from_graph(g);
        let r = evaluate(
            &kg,
            1,
            &ProcessSet::new(),
            &[1, 2, 3, 4],
            &[None, None, None, None],
            AdversaryKind::Silent,
        );
        assert!(!r.premise);
        assert!(!r.holds());
        assert!(r.passes(OracleMode::Conditional));
        assert!(!r.passes(OracleMode::Require));
    }

    #[test]
    fn unhealed_plan_forgives_stalls_but_not_splits() {
        let kg = generators::fig2();
        // Two processes stalled under an unhealed fault plan: not a
        // violation — termination is not owed.
        let mut decisions = vec![Some(100); 7];
        decisions[2] = None;
        decisions[6] = None;
        let r = evaluate_degraded(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
            false,
            &[],
        );
        assert!(!r.termination && !r.termination_required);
        assert!(r.holds(), "{:?}", r.violations);
        assert!(r.violations.is_empty());
        assert!(r.passes(OracleMode::Require));
        // But a split among the processes that DID decide stays a safety
        // violation whatever the plan.
        decisions[3] = Some(101);
        let split = evaluate_degraded(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
            false,
            &[],
        );
        assert!(!split.agreement && !split.holds());
        assert!(!split.passes(OracleMode::Require));
    }

    #[test]
    fn pledge_violations_are_safety_not_liveness() {
        let kg = generators::fig2();
        let decisions = vec![Some(100); 7];
        let findings = vec!["p2 re-voted prepare(1, 7) below its journaled lock".to_string()];
        let r = evaluate_degraded(
            &kg,
            1,
            &ProcessSet::new(),
            &fig2_inputs(),
            &decisions,
            AdversaryKind::Silent,
            true,
            &findings,
        );
        assert!(!r.pledges_ok);
        assert!(r.termination && r.agreement, "only durability is at fault");
        assert!(!r.holds());
        // Safety: conditional mode must NOT forgive it (the premise
        // holds here), and even a premise failure would not — only
        // observe mode records without judging.
        assert!(!r.passes(OracleMode::Require));
        assert!(!r.passes(OracleMode::Conditional));
        assert!(r.passes(OracleMode::Observe));
        assert!(r.violations.iter().any(|v| v.starts_with("durability:")));
    }
}
