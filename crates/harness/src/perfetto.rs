//! Perfetto export of sampled simulation runs: simulator event traces
//! rendered as Chrome trace events, one process track per scenario, one
//! thread track per simulated process.
//!
//! Simulated ticks map 1:1 to trace microseconds — the exported
//! timeline is the *logical* network schedule, not wall time, which is
//! exactly what makes message flight times and timer cadences readable
//! in the viewer. A message in flight is a `Complete` span on its
//! sender's track (send tick → delivery tick); deliveries and timer
//! fires are instants on the receiving process's track.

use std::collections::{HashMap, VecDeque};

use scup_obs::chrome::{ArgValue, ChromeEvent};
use scup_sim::TraceEvent;

use crate::adversary::AdversaryRegistry;
use crate::campaign::Campaign;
use crate::{protocol, topology};

/// Converts one phase's simulator trace to Chrome events on process
/// track `pid`. Thread `tid = i + 1` is simulated process `i`; ticks
/// shift by `offset_us` so multi-phase pipelines lay out sequentially.
///
/// Each send→deliver pair additionally emits a flow arrow (Perfetto
/// draws it from the in-flight span to the delivery instant), with ids
/// allocated upward from `flow_base` — callers combining multiple
/// phases into one document must pass disjoint bases.
pub fn sim_trace_to_chrome(
    events: &[TraceEvent],
    pid: u32,
    offset_us: u64,
    cat: &'static str,
    flow_base: u64,
) -> Vec<ChromeEvent> {
    let mut out = Vec::with_capacity(events.len());
    // Pending flow ids keyed by (from, to, payload), FIFO: the simulator
    // delivers same-link same-payload messages in send order, so the
    // front of the queue is the matching send.
    let mut pending: HashMap<(u32, u32, &str), VecDeque<u64>> = HashMap::new();
    let mut next_flow = flow_base;
    for event in events {
        match event {
            TraceEvent::Sent {
                at,
                from,
                to,
                deliver_at,
                payload,
            } => {
                let id = next_flow;
                next_flow += 1;
                pending
                    .entry((from.as_u32(), to.as_u32(), payload.as_str()))
                    .or_default()
                    .push_back(id);
                out.push(ChromeEvent::Complete {
                    name: format!("{from}->{to}"),
                    cat,
                    ts: offset_us + at.ticks(),
                    // Zero-length spans vanish in the viewer; clamp to 1 µs.
                    dur: deliver_at.ticks().saturating_sub(at.ticks()).max(1),
                    pid,
                    tid: from.as_u32() + 1,
                    args: vec![
                        ("payload", ArgValue::Str(payload.clone())),
                        ("to", ArgValue::U64(to.as_u32() as u64)),
                    ],
                });
                out.push(ChromeEvent::FlowStart {
                    name: format!("{from}->{to}"),
                    cat,
                    id,
                    ts: offset_us + at.ticks(),
                    pid,
                    tid: from.as_u32() + 1,
                });
            }
            TraceEvent::Delivered {
                at,
                from,
                to,
                payload,
            } => {
                // Unmatched deliveries (fault-plane duplicates) get no
                // arrow — only the original send is in flight.
                let flow = pending
                    .get_mut(&(from.as_u32(), to.as_u32(), payload.as_str()))
                    .and_then(VecDeque::pop_front);
                out.push(ChromeEvent::Instant {
                    name: format!("deliver {from}->{to}"),
                    cat,
                    ts: offset_us + at.ticks(),
                    pid,
                    tid: to.as_u32() + 1,
                    args: vec![("payload", ArgValue::Str(payload.clone()))],
                });
                if let Some(id) = flow {
                    out.push(ChromeEvent::FlowEnd {
                        name: format!("{from}->{to}"),
                        cat,
                        id,
                        ts: offset_us + at.ticks(),
                        pid,
                        tid: to.as_u32() + 1,
                    });
                }
            }
            TraceEvent::Timer { at, process, tag } => out.push(ChromeEvent::Instant {
                name: format!("timer {tag}"),
                cat: "timer",
                ts: offset_us + at.ticks(),
                pid,
                tid: process.as_u32() + 1,
                args: vec![("tag", ArgValue::U64(*tag))],
            }),
            TraceEvent::Dropped {
                at,
                from,
                to,
                payload,
            } => out.push(ChromeEvent::Instant {
                name: format!("drop {from}->{to}"),
                cat: "fault",
                ts: offset_us + at.ticks(),
                pid,
                tid: from.as_u32() + 1,
                args: vec![
                    ("payload", ArgValue::Str(payload.clone())),
                    ("to", ArgValue::U64(to.as_u32() as u64)),
                ],
            }),
            TraceEvent::Crashed { at, process } => out.push(ChromeEvent::Instant {
                name: "crash".into(),
                cat: "fault",
                ts: offset_us + at.ticks(),
                pid,
                tid: process.as_u32() + 1,
                args: Vec::new(),
            }),
            TraceEvent::Recovered { at, process } => out.push(ChromeEvent::Instant {
                name: "recover".into(),
                cat: "fault",
                ts: offset_us + at.ticks(),
                pid,
                tid: process.as_u32() + 1,
                args: Vec::new(),
            }),
            TraceEvent::Joined { at, process } => out.push(ChromeEvent::Instant {
                name: "join".into(),
                cat: "churn",
                ts: offset_us + at.ticks(),
                pid,
                tid: process.as_u32() + 1,
                args: Vec::new(),
            }),
            TraceEvent::Left { at, process } => out.push(ChromeEvent::Instant {
                name: "leave".into(),
                cat: "churn",
                ts: offset_us + at.ticks(),
                pid,
                tid: process.as_u32() + 1,
                args: Vec::new(),
            }),
        }
    }
    out
}

/// Re-runs the **first seed** of every scenario in `campaign` with
/// simulator tracing enabled and returns the combined Chrome events —
/// one Perfetto process track per scenario (pid = declaration index +
/// 1), one thread track per simulated process. Scenarios that fail to
/// configure are skipped (the campaign report is where errors belong).
///
/// One seed per scenario keeps the export bounded: a trace is a
/// schedule to *look at*, not a statistic, and every extra seed would
/// only overlay another copy of the same topology.
pub fn trace_first_seeds(campaign: &Campaign) -> Vec<ChromeEvent> {
    trace_seeds(campaign, None)
}

/// [`trace_first_seeds`] with an optional seed override (the
/// `--trace-seed` flag): when set, every scenario re-runs that seed
/// instead of its `seed_base` — the way to export the exact schedule a
/// failing seed produced.
pub fn trace_seeds(campaign: &Campaign, seed_override: Option<u64>) -> Vec<ChromeEvent> {
    let registry = AdversaryRegistry::builtin();
    let mut events = Vec::new();
    for (idx, scenario) in campaign.scenarios.iter().enumerate() {
        let pid = idx as u32 + 1;
        let seed = seed_override.unwrap_or(scenario.seed_base);
        let Ok(adversary) = registry.resolve(&scenario.adversary) else {
            continue;
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
            let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed).ok()?;
            Some((
                kg.n(),
                protocol::execute_traced(
                    scenario.protocol,
                    &kg,
                    scenario.f,
                    &faulty,
                    adversary,
                    &scenario.network,
                    &scenario.fault_plan,
                    &scenario.churn,
                    scenario.resolved_inputs(kg.n()),
                    seed,
                    true,
                ),
            ))
        }));
        let Ok(Some((n, (_, phase1, phase2)))) = outcome else {
            continue;
        };
        events.push(ChromeEvent::ProcessName {
            pid,
            name: format!("{} (seed {seed})", scenario.name),
        });
        for i in 0..n as u32 {
            events.push(ChromeEvent::ThreadName {
                pid,
                tid: i + 1,
                name: format!("process {i}"),
            });
        }
        // Phase traces run on independent sim clocks; lay phase 2 out
        // after phase 1's end so the pipeline reads left to right.
        let phase1_end = phase1
            .iter()
            .map(|e| match e {
                TraceEvent::Sent { deliver_at, .. } => deliver_at.ticks(),
                TraceEvent::Delivered { at, .. }
                | TraceEvent::Timer { at, .. }
                | TraceEvent::Dropped { at, .. }
                | TraceEvent::Crashed { at, .. }
                | TraceEvent::Recovered { at, .. }
                | TraceEvent::Joined { at, .. }
                | TraceEvent::Left { at, .. } => at.ticks(),
            })
            .max()
            .unwrap_or(0);
        // Disjoint flow-id ranges: pid in the high bits, phase below.
        let base = (pid as u64) << 32;
        events.extend(sim_trace_to_chrome(&phase1, pid, 0, "sink-detect", base));
        events.extend(sim_trace_to_chrome(
            &phase2,
            pid,
            phase1_end,
            "consensus",
            base | (1 << 24),
        ));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignMode;
    use crate::scenario::{FaultPlacement, Scenario, TopologySpec};
    use scup_obs::chrome::write_trace_json;

    #[test]
    fn first_seed_trace_covers_both_phases() {
        let campaign = Campaign {
            name: "trace".into(),
            mode: CampaignMode::Sample,
            threads: 1,
            scenarios: vec![Scenario::builder("fig2-silent")
                .topology(TopologySpec::Fig2)
                .faults(FaultPlacement::Ids(vec![5]))
                .seeds(7, 1)
                .build()],
        };
        let events = trace_first_seeds(&campaign);
        let sends = events
            .iter()
            .filter(|e| matches!(e, ChromeEvent::Complete { cat, .. } if *cat == "sink-detect"))
            .count();
        let scp_sends = events
            .iter()
            .filter(|e| matches!(e, ChromeEvent::Complete { cat, .. } if *cat == "consensus"))
            .count();
        assert!(sends > 0, "knowledge-increase phase traffic exported");
        assert!(scp_sends > 0, "SCP phase traffic exported");
        assert!(events
            .iter()
            .any(|e| matches!(e, ChromeEvent::ProcessName { name, .. } if name.contains("fig2"))));
        // And the whole thing serializes to loadable JSON.
        let json = write_trace_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn bad_scenarios_are_skipped_not_fatal() {
        let campaign = Campaign {
            name: "bad".into(),
            mode: CampaignMode::Sample,
            threads: 1,
            scenarios: vec![Scenario::builder("impossible")
                .topology(TopologySpec::ScaleFree { n: 3, m: 4 })
                .seeds(0, 1)
                .build()],
        };
        assert!(trace_first_seeds(&campaign).is_empty());
    }
}
