//! Topology instantiation and fault placement.
//!
//! [`instantiate`] turns a [`TopologySpec`] into a concrete
//! [`KnowledgeGraph`] using the run's seed, and [`place_faults`] turns a
//! [`FaultPlacement`] into a concrete faulty [`ProcessSet`] — both fully
//! deterministic in `(spec, seed)`, independent of thread scheduling.

use rand::rngs::StdRng;
use rand::seq::IteratorRandom as _;
use rand::SeedableRng as _;
use scup_graph::{generators, sink, KnowledgeGraph, ProcessSet};

use crate::scenario::{FaultPlacement, TopologySpec};

/// Instantiates a topology for one run. Returns the knowledge graph and,
/// for generator families that draw one, the generator's faulty set.
pub fn instantiate(
    spec: &TopologySpec,
    f: usize,
    seed: u64,
) -> (KnowledgeGraph, Option<ProcessSet>) {
    // Decorrelate topology randomness from protocol-schedule randomness.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0070_9010_7090);
    match spec {
        TopologySpec::Fig1 => (generators::fig1(), None),
        TopologySpec::Fig2 => (generators::fig2(), None),
        TopologySpec::Fig2Family { sink, outer } => (generators::fig2_family(*sink, *outer), None),
        TopologySpec::RandomKosr {
            sink,
            nonsink,
            k,
            extra_edge_prob,
        } => {
            let config =
                generators::KosrConfig::new(*sink, *nonsink, *k).with_extra_edges(*extra_edge_prob);
            (generators::random_kosr(&config, &mut rng), None)
        }
        TopologySpec::ByzantineSafe { sink, nonsink } => {
            let (kg, faulty) = generators::random_byzantine_safe(*sink, *nonsink, f, &mut rng);
            (kg, Some(faulty))
        }
        TopologySpec::ErdosRenyi { n, p } => (
            KnowledgeGraph::from_graph(generators::erdos_renyi(*n, *p, &mut rng)),
            None,
        ),
        TopologySpec::ScaleFree { n, m } => (generators::scale_free(*n, *m, &mut rng), None),
        TopologySpec::Clustered {
            clusters,
            cluster_size,
            bridges,
            intra_extra_prob,
            inter_extra_prob,
        } => {
            let config = generators::ClusteredConfig::new(*clusters, *cluster_size, *bridges)
                .with_extra_edges(*intra_extra_prob, *inter_extra_prob);
            (generators::clustered(&config, &mut rng), None)
        }
        TopologySpec::PerturbedFig1 {
            additions,
            deletions,
        } => {
            let config = generators::PerturbConfig {
                k: 1,
                additions: *additions,
                deletions: *deletions,
            };
            (
                generators::perturb_kosr(&generators::fig1(), &config, &mut rng),
                None,
            )
        }
        TopologySpec::PerturbedFig2 {
            additions,
            deletions,
        } => {
            let config = generators::PerturbConfig {
                k: 3,
                additions: *additions,
                deletions: *deletions,
            };
            (
                generators::perturb_kosr(&generators::fig2(), &config, &mut rng),
                None,
            )
        }
    }
}

/// Resolves a fault placement against a concrete graph.
///
/// # Errors
///
/// Returns a description when the placement is unsatisfiable (more faults
/// than candidates, fixed ids out of range, or `Generator` on a family
/// that draws no faulty set).
pub fn place_faults(
    placement: &FaultPlacement,
    kg: &KnowledgeGraph,
    generated: Option<ProcessSet>,
    seed: u64,
) -> Result<ProcessSet, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00FA_0175);
    let n = kg.n();
    match placement {
        FaultPlacement::None => Ok(ProcessSet::new()),
        FaultPlacement::Generator => generated.ok_or_else(|| {
            "fault placement `generator` needs a topology family that draws a faulty set \
             (byzantine-safe)"
                .to_string()
        }),
        FaultPlacement::Random { count } => {
            pick(kg.graph().vertex_set(), *count, &mut rng, "processes")
        }
        FaultPlacement::Sink { count } => {
            let s = sink::unique_sink(kg.graph())
                .ok_or_else(|| "fault placement `sink` needs a unique sink".to_string())?;
            pick(s, *count, &mut rng, "sink members")
        }
        FaultPlacement::NonSink { count } => {
            let s = sink::unique_sink(kg.graph())
                .ok_or_else(|| "fault placement `nonsink` needs a unique sink".to_string())?;
            pick(
                kg.graph().vertex_set().difference(&s),
                *count,
                &mut rng,
                "non-sink members",
            )
        }
        FaultPlacement::Ids(ids) => {
            let mut set = ProcessSet::new();
            for &id in ids {
                if id as usize >= n {
                    return Err(format!("faulty id {id} out of range (n = {n})"));
                }
                set.insert(scup_graph::ProcessId::new(id));
            }
            Ok(set)
        }
    }
}

fn pick(
    candidates: ProcessSet,
    count: usize,
    rng: &mut StdRng,
    what: &str,
) -> Result<ProcessSet, String> {
    if candidates.len() < count {
        return Err(format!(
            "cannot place {count} faults among {} {what}",
            candidates.len()
        ));
    }
    Ok(candidates.iter().sample(rng, count).into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec as T;

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let spec = T::RandomKosr {
            sink: 6,
            nonsink: 5,
            k: 2,
            extra_edge_prob: 0.1,
        };
        let (a, _) = instantiate(&spec, 1, 42);
        let (b, _) = instantiate(&spec, 1, 42);
        assert_eq!(a.graph(), b.graph());
        let (c, _) = instantiate(&spec, 1, 43);
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn every_family_instantiates() {
        let specs = [
            T::Fig1,
            T::Fig2,
            T::Fig2Family { sink: 4, outer: 4 },
            T::RandomKosr {
                sink: 5,
                nonsink: 4,
                k: 2,
                extra_edge_prob: 0.0,
            },
            T::ByzantineSafe {
                sink: 5,
                nonsink: 3,
            },
            T::ErdosRenyi { n: 10, p: 0.25 },
            T::ScaleFree { n: 20, m: 2 },
            T::Clustered {
                clusters: 3,
                cluster_size: 4,
                bridges: 1,
                intra_extra_prob: 0.2,
                inter_extra_prob: 0.0,
            },
            T::PerturbedFig1 {
                additions: 5,
                deletions: 2,
            },
            T::PerturbedFig2 {
                additions: 5,
                deletions: 2,
            },
        ];
        for spec in specs {
            let (kg, generated) = instantiate(&spec, 1, 7);
            assert!(kg.n() >= 7, "{}", spec.family_name());
            assert_eq!(
                generated.is_some(),
                matches!(spec, T::ByzantineSafe { .. }),
                "{}",
                spec.family_name()
            );
        }
    }

    #[test]
    fn fault_placements_resolve() {
        let (kg, _) = instantiate(&T::Fig1, 1, 1);
        let sink_set = sink::unique_sink(kg.graph()).unwrap();

        assert!(place_faults(&FaultPlacement::None, &kg, None, 1)
            .unwrap()
            .is_empty());
        let r = place_faults(&FaultPlacement::Random { count: 2 }, &kg, None, 1).unwrap();
        assert_eq!(r.len(), 2);
        let s = place_faults(&FaultPlacement::Sink { count: 1 }, &kg, None, 1).unwrap();
        assert!(s.is_subset(&sink_set));
        let ns = place_faults(&FaultPlacement::NonSink { count: 2 }, &kg, None, 1).unwrap();
        assert!(ns.is_disjoint(&sink_set));
        let ids = place_faults(&FaultPlacement::Ids(vec![0, 3]), &kg, None, 1).unwrap();
        assert_eq!(ids.len(), 2);

        assert!(place_faults(&FaultPlacement::Ids(vec![99]), &kg, None, 1).is_err());
        assert!(place_faults(&FaultPlacement::Generator, &kg, None, 1).is_err());
        assert!(place_faults(&FaultPlacement::Random { count: 100 }, &kg, None, 1).is_err());
    }

    #[test]
    fn fault_placement_is_deterministic() {
        let (kg, _) = instantiate(&T::Fig2, 1, 5);
        let a = place_faults(&FaultPlacement::Random { count: 3 }, &kg, None, 9).unwrap();
        let b = place_faults(&FaultPlacement::Random { count: 3 }, &kg, None, 9).unwrap();
        assert_eq!(a, b);
    }
}
