//! The declarative scenario model.
//!
//! A [`Scenario`] names everything one experiment needs — topology family,
//! fault threshold, adversary strategy, fault placement, protocol, network
//! timing, seed range, and oracle mode — as plain data. Campaign files
//! (TOML or JSON) deserialize into this type; the builder serves
//! programmatic use.

use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_sim::{
    ChurnPlan, CrashFault, DelayFault, DupFault, FaultPlan, JoinEvent, LeaveEvent, LossFault,
    Partition, RetransmitConfig,
};
use stellar_cup::attempts::LocalSliceStrategy;

/// A parameterized topology family.
///
/// Every family is instantiated deterministically from a per-run seed (see
/// [`crate::topology::instantiate`]); the paper's fixed figures simply
/// ignore the seed.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's Fig. 1 (8 processes, sink `{5,6,7,8}`).
    Fig1,
    /// The paper's Fig. 2 (7 processes, the Theorem-2 counterexample).
    Fig2,
    /// The generalized Fig. 2 family: complete sink + outer ring.
    Fig2Family {
        /// Sink size (≥ 3).
        sink: usize,
        /// Outer-ring size (≥ 3).
        outer: usize,
    },
    /// Random `k`-OSR graphs (circulant sink + `k` contacts per outsider).
    RandomKosr {
        /// Sink size.
        sink: usize,
        /// Non-sink size.
        nonsink: usize,
        /// Connectivity parameter of Definition 6.
        k: usize,
        /// Extra-edge probability.
        extra_edge_prob: f64,
    },
    /// Random Byzantine-safe graphs together with a generator-drawn
    /// faulty set satisfying Theorem 1's premise (use with
    /// [`FaultPlacement::Generator`]).
    ByzantineSafe {
        /// Sink size (≥ 3f + 2).
        sink: usize,
        /// Non-sink size.
        nonsink: usize,
    },
    /// Erdős–Rényi digraphs `G(n, p)` — no structural guarantee; pair
    /// with [`OracleMode::Conditional`].
    ErdosRenyi {
        /// Number of processes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Scale-free graphs by preferential attachment (always 1-OSR).
    ScaleFree {
        /// Number of processes.
        n: usize,
        /// Out-degree of each joining process.
        m: usize,
    },
    /// Clustered/partitioned community graphs.
    Clustered {
        /// Number of clusters (cluster 0 is the core).
        clusters: usize,
        /// Processes per cluster.
        cluster_size: usize,
        /// Knowledge edges from each non-core cluster into the core
        /// (0 ⇒ fully partitioned).
        bridges: usize,
        /// Extra intra-cluster edge probability.
        intra_extra_prob: f64,
        /// Extra cross-cluster edge probability.
        inter_extra_prob: f64,
    },
    /// `k`-OSR-preserving random perturbations of Fig. 1 (`k = 1`).
    PerturbedFig1 {
        /// Edge-addition attempts.
        additions: usize,
        /// Edge-deletion attempts (validated, reverted on violation).
        deletions: usize,
    },
    /// `k`-OSR-preserving random perturbations of Fig. 2 (`k = 3`).
    PerturbedFig2 {
        /// Edge-addition attempts.
        additions: usize,
        /// Edge-deletion attempts (validated, reverted on violation).
        deletions: usize,
    },
}

impl TopologySpec {
    /// The family name used in campaign files and reports.
    pub fn family_name(&self) -> &'static str {
        match self {
            TopologySpec::Fig1 => "fig1",
            TopologySpec::Fig2 => "fig2",
            TopologySpec::Fig2Family { .. } => "fig2-family",
            TopologySpec::RandomKosr { .. } => "random-kosr",
            TopologySpec::ByzantineSafe { .. } => "byzantine-safe",
            TopologySpec::ErdosRenyi { .. } => "erdos-renyi",
            TopologySpec::ScaleFree { .. } => "scale-free",
            TopologySpec::Clustered { .. } => "clustered",
            TopologySpec::PerturbedFig1 { .. } => "perturbed-fig1",
            TopologySpec::PerturbedFig2 { .. } => "perturbed-fig2",
        }
    }
}

/// Where the faulty processes sit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlacement {
    /// No faults.
    None,
    /// Use the faulty set drawn by the topology generator
    /// (only [`TopologySpec::ByzantineSafe`] provides one).
    Generator,
    /// `count` faulty processes drawn uniformly per run.
    Random {
        /// How many processes fail.
        count: usize,
    },
    /// `count` faulty processes drawn uniformly from the sink component.
    Sink {
        /// How many processes fail.
        count: usize,
    },
    /// `count` faulty processes drawn uniformly outside the sink.
    NonSink {
        /// How many processes fail.
        count: usize,
    },
    /// A fixed list of (0-based) process ids.
    Ids(Vec<u32>),
}

/// Declarative fault-injection spec: the flat, campaign-file-friendly
/// mirror of [`scup_sim::FaultPlan`], written in TOML as an inline table:
///
/// ```toml
/// faults = { loss = 0.3, loss_until = 2000, crash = [2], crash_at = 300, recover_at = 1500 }
/// ```
///
/// Every window field defaults to `u64::MAX` ("never heals") so a fault
/// with no explicit end is deliberately unhealed — the graceful-
/// degradation oracle then requires safety but not termination. The
/// default spec ([`FaultSpec::default`]) maps to the zero plan, which is
/// guaranteed not to perturb the delivery schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probabilistic per-message loss probability (0 = off).
    pub loss: f64,
    /// First tick at which loss heals.
    pub loss_until: u64,
    /// Probabilistic duplication probability (0 = off).
    pub dup: f64,
    /// First tick at which duplication heals.
    pub dup_until: u64,
    /// Extra worst-case delivery latency in ticks (0 = off).
    pub extra_delay: u64,
    /// First tick at which latency returns to the `Δ` contract.
    pub extra_delay_until: u64,
    /// One side of a partition cut (empty = no partition).
    pub partition: Vec<u32>,
    /// First tick of the partition window.
    pub partition_from: u64,
    /// First tick after the partition heals.
    pub partition_until: u64,
    /// Processes that crash (empty = no crashes).
    pub crash: Vec<u32>,
    /// Tick at which the `crash` processes go down.
    pub crash_at: u64,
    /// Recovery tick for the crashed processes (`None` = down forever).
    pub recover_at: Option<u64>,
    /// Crashed processes that lose their durable journal on recovery
    /// (amnesia): they come back with empty state instead of replaying.
    /// Must be a subset of `crash`. Empty = every recovery replays.
    pub amnesia: Vec<u32>,
    /// Whether protocols run their retransmission layer to heal the lossy
    /// links (`true` by default; a zero plan never retransmits either
    /// way, preserving bit-identical fault-free schedules).
    pub retransmit: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            loss: 0.0,
            loss_until: u64::MAX,
            dup: 0.0,
            dup_until: u64::MAX,
            extra_delay: 0,
            extra_delay_until: u64::MAX,
            partition: Vec::new(),
            partition_from: 0,
            partition_until: u64::MAX,
            crash: Vec::new(),
            crash_at: 0,
            recover_at: None,
            amnesia: Vec::new(),
            retransmit: true,
        }
    }
}

impl FaultSpec {
    /// Lowers the flat spec into the simulator's [`FaultPlan`].
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            loss: (self.loss > 0.0).then_some(LossFault {
                prob: self.loss,
                until: self.loss_until,
                links: None,
            }),
            duplication: (self.dup > 0.0).then_some(DupFault {
                prob: self.dup,
                until: self.dup_until,
            }),
            extra_delay: (self.extra_delay > 0).then_some(DelayFault {
                ticks: self.extra_delay,
                until: self.extra_delay_until,
            }),
            partitions: if self.partition.is_empty() {
                Vec::new()
            } else {
                vec![Partition {
                    side: ProcessSet::from_ids(self.partition.iter().copied()),
                    from: self.partition_from,
                    until: self.partition_until,
                }]
            },
            crashes: self
                .crash
                .iter()
                .map(|&p| CrashFault {
                    process: ProcessId::new(p),
                    at: self.crash_at,
                    recover_at: self.recover_at,
                })
                .collect(),
            amnesia: ProcessSet::from_ids(self.amnesia.iter().copied()),
        }
    }

    /// The retransmission schedule protocols should run under this spec:
    /// disabled for the zero plan (or when `retransmit = false`),
    /// otherwise a backoff ladder covering the plan's heal tick — or GST
    /// for unhealed plans, so senders keep trying for a while but
    /// eventually quiesce.
    pub fn retransmit_config(&self, network: &NetworkSpec) -> RetransmitConfig {
        let plan = self.to_plan();
        if !self.retransmit || plan.is_zero() {
            return RetransmitConfig::disabled();
        }
        let heal = plan.heal_tick().unwrap_or(0).max(network.gst);
        RetransmitConfig::covering(heal, network.delta.max(1))
    }

    /// How many scheduled crash–recover cycles the spec contains.
    pub fn planned_recoveries(&self) -> u64 {
        if self.recover_at.is_some() {
            self.crash.len() as u64
        } else {
            0
        }
    }
}

/// Declarative membership-churn spec: the flat, campaign-file-friendly
/// mirror of [`scup_sim::ChurnPlan`], written in TOML as an inline table:
///
/// ```toml
/// churn = { joins = [3, 5], join_at = 20000, leaves = [6], leave_at = 40000 }
/// ```
///
/// Joiners start dormant and materialize at
/// `join_at + index * join_stagger`, with their static participant
/// detector as contacts; every incumbent whose PD names the joiner gets
/// an `on_peer_joined` introduction (the incremental re-discovery hook).
/// Leavers fall silent for good at `leave_at + index * leave_stagger`.
/// The default spec is the zero plan, which is bit-identical to running
/// without a churn plane at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Processes that join mid-run (dormant until their join tick).
    pub joins: Vec<u32>,
    /// Tick of the first join.
    pub join_at: u64,
    /// Extra delay between consecutive joins (0 = a join storm).
    pub join_stagger: u64,
    /// Processes that leave mid-run (silent from their leave tick on).
    pub leaves: Vec<u32>,
    /// Tick of the first leave.
    pub leave_at: u64,
    /// Extra delay between consecutive leaves.
    pub leave_stagger: u64,
    /// Misconfiguration exhibit: the first joiner boots with a stale
    /// forced decision (a value nobody proposed) instead of catching up
    /// properly — the strong-validity oracle must flag it. BFT-CUP only;
    /// pair with `expect_violation = true`.
    pub stale_joiner: bool,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            joins: Vec::new(),
            join_at: 20_000,
            join_stagger: 0,
            leaves: Vec::new(),
            leave_at: 20_000,
            leave_stagger: 0,
            stale_joiner: false,
        }
    }
}

impl ChurnSpec {
    /// `true` when no membership event is scheduled (the zero plan).
    pub fn is_zero(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }

    /// The processes scheduled to leave, as a set — the oracles stop
    /// owing them termination.
    pub fn departed(&self) -> ProcessSet {
        ProcessSet::from_ids(self.leaves.iter().copied())
    }

    /// Lowers the flat spec into the simulator's [`ChurnPlan`] against a
    /// concrete graph: a joiner's contacts are its static participant
    /// detector, and it is introduced to every process whose PD names it.
    /// Out-of-range ids produce events with empty contact sets so
    /// [`ChurnPlan::validate`] can report them as errors instead of this
    /// lowering panicking.
    pub fn to_plan(&self, kg: &KnowledgeGraph) -> ChurnPlan {
        let joins = self
            .joins
            .iter()
            .enumerate()
            .map(|(idx, &p)| {
                let j = ProcessId::new(p);
                let in_range = j.index() < kg.n();
                JoinEvent {
                    process: j,
                    at: self.join_at + idx as u64 * self.join_stagger,
                    contacts: if in_range {
                        kg.pd(j).clone()
                    } else {
                        ProcessSet::new()
                    },
                    introduce_to: if in_range {
                        kg.processes().filter(|&i| kg.pd(i).contains(j)).collect()
                    } else {
                        ProcessSet::new()
                    },
                }
            })
            .collect();
        let leaves = self
            .leaves
            .iter()
            .enumerate()
            .map(|(idx, &p)| LeaveEvent {
                process: ProcessId::new(p),
                at: self.leave_at + idx as u64 * self.leave_stagger,
            })
            .collect();
        ChurnPlan { joins, leaves }
    }
}

/// Which validity variant the oracle judges decided values against
/// (the hierarchy of Civit et al., arXiv:2301.04920). All three are
/// safety oracles over the same decision vector; they only differ in
/// which decided values count as legitimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidityMode {
    /// A decided value must have been proposed by a *correct* process
    /// (fail-stop proposals count under the crash adversary).
    #[default]
    Strong,
    /// Only binding when every correct process proposed the same value:
    /// then exactly that value may be decided. Distinct proposals make
    /// the oracle vacuous.
    Weak,
    /// A decided value must satisfy the external legitimacy predicate —
    /// here: it was *somebody's* proposal, faulty processes included
    /// (the stand-in for an application-level certificate check).
    External,
}

impl ValidityMode {
    /// The mode name used in campaign files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ValidityMode::Strong => "strong",
            ValidityMode::Weak => "weak",
            ValidityMode::External => "external",
        }
    }
}

/// Which consensus pipeline the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// The paper's positive pipeline: distributed sink detector →
    /// Algorithm 2 slices → SCP (Theorems 3–5).
    StellarMinimal,
    /// The negative pipeline: local slices from `PD_i` and `f` only
    /// (Theorem 2 / Corollary 1 territory).
    StellarLocal(LocalSliceStrategy),
    /// The BFT-CUP baseline (Theorem 1).
    BftCup,
}

impl ProtocolSpec {
    /// The protocol name used in campaign files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::StellarMinimal => "stellar-minimal",
            ProtocolSpec::StellarLocal(LocalSliceStrategy::AllButOne) => {
                "stellar-local-all-but-one"
            }
            ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF) => "stellar-local-survive-f",
            ProtocolSpec::StellarLocal(LocalSliceStrategy::FPlusOne) => "stellar-local-f-plus-one",
            ProtocolSpec::BftCup => "bft-cup",
        }
    }
}

/// Partially synchronous network timing for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Global stabilization time.
    pub gst: u64,
    /// Post-GST delivery bound `Δ`.
    pub delta: u64,
    /// Simulated-time horizon per phase.
    ///
    /// Converging runs stop well before the horizon; runs that *cannot*
    /// converge (e.g. Erdős–Rényi sweeps under `observe`) keep re-arming
    /// protocol timers until it, so give exploratory scenarios a horizon
    /// in the tens of thousands, not the default millions.
    pub max_ticks: u64,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec {
            gst: 150,
            delta: 10,
            max_ticks: 3_000_000,
        }
    }
}

/// How oracle violations affect a run's pass/fail status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleMode {
    /// Every run must satisfy agreement, validity and termination.
    #[default]
    Require,
    /// Runs must satisfy the oracles only when the structural premise
    /// (Byzantine-safe `k`-OSR with enough correct sink members) holds;
    /// premise-violating runs are recorded but never fail.
    Conditional,
    /// Runs never fail; oracle outcomes are only recorded.
    Observe,
}

impl OracleMode {
    /// The mode name used in campaign files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OracleMode::Require => "require",
            OracleMode::Conditional => "conditional",
            OracleMode::Observe => "observe",
        }
    }
}

/// Which search discipline drives the explorer's worker loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Min-depth-first (uniform-cost) frontier: states are expanded in
    /// nondecreasing depth order, so every canonical state is expanded
    /// exactly once at its minimal depth — re-expansions are zero by
    /// construction and the visited table needs only a fingerprint, a
    /// depth and a classification. The default.
    #[default]
    Ucs,
    /// The legacy label-correcting depth-first loop: deep-first order
    /// with min-depth correction on revisit (re-expanding when a state
    /// is reached again at a shallower depth). Retained as the
    /// differential oracle for `ucs` and as the only discipline that
    /// supports `sleep_sets` (its covers are scoped to DFS frames).
    Dfs,
}

impl SearchMode {
    /// The mode name used in campaign files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SearchMode::Ucs => "ucs",
            SearchMode::Dfs => "dfs",
        }
    }
}

/// Bounds and expectations for exhaustive exploration (`mode = "explore"`
/// campaigns, run by the `scup-mc` bounded model checker).
///
/// Sampling fields keep their meaning where sensible: the scenario's
/// `seed_base` still seeds topology instantiation, fault placement and the
/// (deterministic) knowledge-increase phase; `seeds` is ignored — the
/// explorer quantifies over schedules, not seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreSpec {
    /// Maximum branching steps per explored schedule (absorbed no-op
    /// deliveries are free). Schedules cut here count as `truncated` and
    /// mark the exploration incomplete.
    pub max_steps: u32,
    /// Safety valve on distinct states; exceeding it aborts the scenario
    /// with an error (raise the bound rather than trusting a capped
    /// exploration).
    pub max_states: u64,
    /// How many timer events each process may fire (the untimed semantics
    /// treats a pending timer as a schedulable choice; re-arming would
    /// otherwise make the space infinite).
    pub timer_budget: u32,
    /// The explorer shards the first `frontier_depth` branch decisions
    /// across workers. Purely a parallelism knob — results are identical
    /// for any value.
    pub frontier_depth: u32,
    /// `true` for seeded-counterexample scenarios: the run *passes* iff a
    /// safety violation is found (and its minimal trace is reported).
    pub expect_violation: bool,
    /// Symmetry reduction: quotient states by renamings of interchangeable
    /// processes (equal slices, inputs and adversary role, verified
    /// against the FBQS). Shrinks the state *count*; sound — reduced and
    /// unreduced exploration agree on every verdict. On by default; turn
    /// off to compare (the differential soundness tests do).
    pub symmetry: bool,
    /// Sleep-set partial-order reduction over commuting deliveries.
    /// Verdict-preserving (violation/no-violation, minimal depth, decided
    /// values, completeness — pinned by the differential tests); the raw
    /// state census may shrink where interleavings are trace-equivalent
    /// to extensions of terminal states. Off by default, and supported
    /// under `search = "dfs"` only: the sleep-aware cover cache is
    /// scoped to DFS frames (a revisit whose sleep set no cover
    /// subsumes re-expands fully), which is incoherent under
    /// uniform-cost order where each state is expanded exactly once —
    /// the parser and `Setup::from_scenario` both reject
    /// `sleep_sets = true` with the default `search = "ucs"`.
    pub sleep_sets: bool,
    /// Persistent-set reduction over *threshold-inert* deliveries: an
    /// enabled delivery that provably commutes with every alternative
    /// (a vote for an already-accepted statement from a fully-registered
    /// correct origin — it cannot change any quorum threshold) is fired
    /// eagerly as a forced, uncounted move instead of being a branch
    /// point. Collapses the flood-tail interleavings, shrinking the state
    /// *count* — the lever that makes a third active proposer
    /// exhaustible. Depth bookkeeping treats inert fires as free in both
    /// reduced and unreduced runs of the same spec, so minimal
    /// counterexample depths remain comparable. On by default.
    pub eager_inert: bool,
    /// Explore the knowledge-increase phase too (`stellar-minimal` only):
    /// instead of fixing every process's slices by one deterministic
    /// discovery/sink-detection run, each process runs the full stack —
    /// Algorithm 3 then Algorithm-2 slices then SCP — inside the explored
    /// schedule, so discovery message orderings become choice points.
    /// Off by default (the PR 3 semantics); value-injecting adversaries
    /// are not yet supported with it.
    pub explore_discovery: bool,
    /// Fix BFT-CUP sink membership *before* exploration (`bft-cup` only):
    /// every actor starts with the graph's unique sink as its resolved
    /// member set and skips in-schedule SINK discovery — the dual of the
    /// SCP drivers' pre-computed slices. Discovery orderings stop being
    /// choice points, so the branching budget goes entirely to the
    /// consensus rounds (propose/echo/commit and, with a timer budget,
    /// view changes). Off by default: the full-stack semantics explores
    /// discovery in-schedule.
    pub preresolve_sink: bool,
    /// View timeout (in abstract delivery steps) the explored BFT-CUP
    /// actors are configured with (`bft-cup` only; the timed sampling
    /// drivers derive theirs from `Δ`). Must be positive — the parser
    /// rejects 0 at load time.
    pub bft_view_timeout: u64,
    /// Search discipline for the worker loops (`ucs` by default; `dfs`
    /// keeps the legacy label-correcting loop for differential runs and
    /// for `sleep_sets`). Both produce identical verdicts, minimal
    /// counterexample depths, decided values and state censuses —
    /// pinned by the differential battery.
    pub search: SearchMode,
}

impl Default for ExploreSpec {
    fn default() -> Self {
        ExploreSpec {
            // Conservative: large systems with distinct inputs explode
            // combinatorially, and forcing `--mode explore` onto a
            // sampling campaign must fail fast with the cap message, not
            // grind for hours. Scenarios written for exploration set
            // their own bounds (see campaigns/explore.toml).
            max_steps: 64,
            max_states: 200_000,
            timer_budget: 1,
            frontier_depth: 2,
            expect_violation: false,
            symmetry: true,
            sleep_sets: false,
            eager_inert: true,
            explore_discovery: false,
            preresolve_sink: false,
            bft_view_timeout: 400,
            search: SearchMode::Ucs,
        }
    }
}

/// One declarative experiment: a topology family × adversary × protocol ×
/// seed range, with the oracle policy to judge it by.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (unique within a campaign).
    pub name: String,
    /// Topology family.
    pub topology: TopologySpec,
    /// Fault threshold `f` the protocols are configured with.
    pub f: usize,
    /// Adversary strategy name, resolved against the
    /// [`registry`](crate::adversary::AdversaryRegistry) (e.g. `"silent"`,
    /// `"equivocate"`, `"crash:5"`).
    pub adversary: String,
    /// Fault placement.
    pub faults: FaultPlacement,
    /// Network/process fault injection (TOML key `faults = { ... }`);
    /// the zero spec by default.
    pub fault_plan: FaultSpec,
    /// Membership churn (TOML key `churn = { ... }`); the zero spec by
    /// default.
    pub churn: ChurnSpec,
    /// Which validity variant the oracle judges (TOML key `validity`);
    /// strong by default.
    pub validity: ValidityMode,
    /// Sampling-mode counterexample expectation: the run *passes* iff
    /// the oracles caught a violation (used by seeded misconfiguration
    /// exhibits like `stale_joiner`). The parser sets this and
    /// [`ExploreSpec::expect_violation`] from the same campaign key.
    pub expect_violation: bool,
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Network timing.
    pub network: NetworkSpec,
    /// Number of seeds (runs) for this scenario.
    pub seeds: u64,
    /// First seed; runs use `seed_base..seed_base + seeds`.
    pub seed_base: u64,
    /// Oracle policy.
    pub oracle: OracleMode,
    /// Per-process input override (`inputs[i]` is process `i`'s proposal;
    /// shorter lists repeat cyclically). `None` = the default distinct
    /// inputs `100 + i`. Fewer distinct values shrink the nomination
    /// space — the lever that makes exhaustive exploration of a scenario
    /// tractable.
    pub inputs: Option<Vec<u64>>,
    /// Exploration bounds (used only under `mode = "explore"`).
    pub explore: ExploreSpec,
}

impl Scenario {
    /// The concrete per-process inputs for an `n`-process instantiation:
    /// the override repeated cyclically, or the default distinct `100 + i`
    /// (an empty override — constructible through the builder, rejected by
    /// the campaign-file parser — falls back to the default rather than
    /// dividing by zero).
    pub fn resolved_inputs(&self, n: usize) -> Vec<u64> {
        match self.inputs.as_deref() {
            Some(values) if !values.is_empty() => {
                (0..n).map(|i| values[i % values.len()]).collect()
            }
            _ => (0..n).map(|i| 100 + i as u64).collect(),
        }
    }

    /// Why `explore_discovery = true` cannot be explored for this
    /// scenario, if it cannot: the knob applies to the `stellar-minimal`
    /// pipeline only, and value-injecting adversaries are unsupported
    /// (`value_injecting` is the caller's classification — a string match
    /// at parse time, the resolved `AdversaryKind` at setup time). The
    /// single source of truth for both the parse-time and the setup-time
    /// rejection, so the error text cannot drift between entry paths.
    pub fn explore_discovery_unsupported(&self, value_injecting: bool) -> Option<String> {
        if !self.explore.explore_discovery {
            return None;
        }
        if self.protocol != ProtocolSpec::StellarMinimal {
            return Some(format!(
                "scenario `{}`: knob `explore_discovery = true` applies to protocol \
                 `stellar-minimal` only (`{}` has no knowledge-increase phase to \
                 explore)",
                self.name,
                self.protocol.name()
            ));
        }
        if value_injecting {
            return Some(format!(
                "scenario `{}`: knob `explore_discovery = true` does not support the \
                 value-injecting adversary `{}` yet; use silent / echo / crash:N",
                self.name, self.adversary
            ));
        }
        None
    }

    /// Shared validation for the `sleep_sets` knob: the sleep-aware
    /// cover cache is scoped to DFS frames (a miss re-expands the whole
    /// subtree), which has no coherent meaning under the uniform-cost
    /// frontier where every state is expanded exactly once. The single
    /// source of truth for the parse-time and the setup-time rejection.
    pub fn sleep_sets_unsupported(&self) -> Option<String> {
        if self.explore.sleep_sets && self.explore.search != SearchMode::Dfs {
            return Some(format!(
                "scenario `{}`: knob `sleep_sets = true` requires `search = \"dfs\"` \
                 (sleep-set covers are scoped to DFS frames; the uniform-cost \
                 frontier expands each state exactly once, so a cover miss has \
                 nothing to re-expand)",
                self.name
            ));
        }
        None
    }

    /// Shared validation for the `preresolve_sink` knob: it fixes BFT-CUP
    /// sink membership ahead of exploration, so it applies to `bft-cup`
    /// only. Returns the rejection message, or `None` when the
    /// combination is supported.
    pub fn preresolve_sink_unsupported(&self) -> Option<String> {
        if !self.explore.preresolve_sink {
            return None;
        }
        if self.protocol != ProtocolSpec::BftCup {
            return Some(format!(
                "scenario `{}`: knob `preresolve_sink = true` applies to protocol \
                 `bft-cup` only (`{}` resolves its sink through pre-computed \
                 slices already)",
                self.name,
                self.protocol.name()
            ));
        }
        None
    }

    /// Starts building a scenario with defaults (Fig. 2, `f = 1`, silent
    /// adversary, no faults, positive pipeline, 8 seeds, `require`).
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                topology: TopologySpec::Fig2,
                f: 1,
                adversary: "silent".to_string(),
                faults: FaultPlacement::None,
                fault_plan: FaultSpec::default(),
                churn: ChurnSpec::default(),
                validity: ValidityMode::Strong,
                expect_violation: false,
                protocol: ProtocolSpec::StellarMinimal,
                network: NetworkSpec::default(),
                seeds: 8,
                seed_base: 0,
                oracle: OracleMode::Require,
                inputs: None,
                explore: ExploreSpec::default(),
            },
        }
    }
}

/// Fluent construction of [`Scenario`]s; see [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the topology family.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.scenario.topology = t;
        self
    }

    /// Sets the fault threshold.
    pub fn f(mut self, f: usize) -> Self {
        self.scenario.f = f;
        self
    }

    /// Sets the adversary strategy name.
    pub fn adversary(mut self, name: impl Into<String>) -> Self {
        self.scenario.adversary = name.into();
        self
    }

    /// Sets the fault placement.
    pub fn faults(mut self, p: FaultPlacement) -> Self {
        self.scenario.faults = p;
        self
    }

    /// Sets the fault-injection spec.
    pub fn fault_plan(mut self, spec: FaultSpec) -> Self {
        self.scenario.fault_plan = spec;
        self
    }

    /// Sets the membership-churn spec.
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.scenario.churn = spec;
        self
    }

    /// Sets the validity variant the oracle judges.
    pub fn validity(mut self, mode: ValidityMode) -> Self {
        self.scenario.validity = mode;
        self
    }

    /// Marks the scenario as a seeded counterexample: it passes iff the
    /// oracles catch a violation.
    pub fn expect_violation(mut self, expect: bool) -> Self {
        self.scenario.expect_violation = expect;
        self
    }

    /// Sets the protocol.
    pub fn protocol(mut self, p: ProtocolSpec) -> Self {
        self.scenario.protocol = p;
        self
    }

    /// Sets the network timing.
    pub fn network(mut self, n: NetworkSpec) -> Self {
        self.scenario.network = n;
        self
    }

    /// Sets the seed range.
    pub fn seeds(mut self, base: u64, count: u64) -> Self {
        self.scenario.seed_base = base;
        self.scenario.seeds = count;
        self
    }

    /// Sets the oracle mode.
    pub fn oracle(mut self, o: OracleMode) -> Self {
        self.scenario.oracle = o;
        self
    }

    /// Sets the exploration bounds.
    pub fn explore(mut self, e: ExploreSpec) -> Self {
        self.scenario.explore = e;
        self
    }

    /// Overrides the per-process inputs (cyclic when shorter than `n`).
    pub fn inputs(mut self, inputs: Vec<u64>) -> Self {
        self.scenario.inputs = Some(inputs);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_resolve_cyclically_and_tolerate_empty_overrides() {
        let s = Scenario::builder("t").inputs(vec![4, 5]).build();
        assert_eq!(s.resolved_inputs(3), vec![4, 5, 4]);
        // The builder (unlike the parser) allows an empty override; it
        // must fall back to the defaults, not divide by zero.
        let empty = Scenario::builder("t").inputs(vec![]).build();
        assert_eq!(empty.resolved_inputs(3), vec![100, 101, 102]);
    }

    #[test]
    fn builder_round_trip() {
        let s = Scenario::builder("t")
            .topology(TopologySpec::ScaleFree { n: 30, m: 2 })
            .f(0)
            .adversary("echo")
            .faults(FaultPlacement::Random { count: 1 })
            .protocol(ProtocolSpec::BftCup)
            .seeds(7, 3)
            .oracle(OracleMode::Observe)
            .build();
        assert_eq!(s.name, "t");
        assert_eq!(s.topology.family_name(), "scale-free");
        assert_eq!(s.adversary, "echo");
        assert_eq!(s.protocol.name(), "bft-cup");
        assert_eq!((s.seed_base, s.seeds), (7, 3));
        assert_eq!(s.oracle.name(), "observe");
    }

    #[test]
    fn fault_spec_lowers_to_the_simulator_plan() {
        let spec = FaultSpec {
            loss: 0.25,
            loss_until: 800,
            dup: 0.1,
            dup_until: 600,
            extra_delay: 15,
            extra_delay_until: 700,
            partition: vec![0, 2],
            partition_from: 50,
            partition_until: 900,
            crash: vec![1, 4],
            crash_at: 100,
            recover_at: Some(1200),
            ..Default::default()
        };
        let plan = spec.to_plan();
        assert!(!plan.is_zero());
        // Every window closes: the plan heals at the latest of them.
        assert_eq!(plan.heal_tick(), Some(1200));
        assert_eq!(
            plan.loss.as_ref().map(|l| (l.prob, l.until)),
            Some((0.25, 800))
        );
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.crashes.len(), 2);
        assert_eq!(spec.planned_recoveries(), 2);
        // Dropping the recovery makes the plan unhealed — and the spec
        // reports no planned recoveries.
        let down_forever = FaultSpec {
            recover_at: None,
            ..spec
        };
        assert_eq!(down_forever.to_plan().heal_tick(), None);
        assert_eq!(down_forever.planned_recoveries(), 0);
    }

    #[test]
    fn retransmission_covers_the_heal_and_is_inert_on_zero_plans() {
        let network = NetworkSpec::default();
        // The zero plan never retransmits, even though `retransmit`
        // defaults to true: fault-free schedules stay bit-identical.
        let zero = FaultSpec::default();
        assert!(zero.to_plan().is_zero());
        assert!(!zero.retransmit_config(&network).enabled());
        // A lossy plan healing after GST retransmits until past the heal.
        let lossy = FaultSpec {
            loss: 0.5,
            loss_until: 2_000,
            ..Default::default()
        };
        let config = lossy.retransmit_config(&network);
        assert!(config.enabled());
        // Opting out disables the layer regardless of the plan.
        let stubborn = FaultSpec {
            retransmit: false,
            ..lossy
        };
        assert!(!stubborn.retransmit_config(&network).enabled());
    }
}
