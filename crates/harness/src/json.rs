//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no crates.io access, so instead of serde the
//! harness carries its own tiny JSON layer: enough to emit campaign
//! reports and read campaign files. Object key order is preserved
//! (reports stay diffable); numbers are `i64` or `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (floats with zero fraction coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The float payload (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns `(byte offset, message)` on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("bad integer"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shape() {
        let doc = Json::obj([
            ("name", Json::Str("fig1".into())),
            ("passed", Json::Bool(true)),
            ("runs", Json::Arr(vec![Json::Int(1), Json::Float(2.5)])),
            ("nested", Json::obj([("k", Json::Null)])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn escapes_are_symmetric() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "\"x",
            "{\"a\":1,\"a\":2}",
            "tru",
            "01x",
            "[] []",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": [true, 1.5], "c": "s"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("c").unwrap().as_str(), Some("s"));
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(1.5)
        );
        assert!(doc.get("missing").is_none());
    }
}
