//! **scup-harness** — declarative scenario campaigns for the workspace's
//! consensus protocols.
//!
//! The paper's results are claims over *families* of knowledge graphs and
//! adversaries; this crate makes those families executable at scale:
//!
//! - [`scenario`] — the declarative model: a [`Scenario`](scenario::Scenario)
//!   names a topology family, fault threshold, adversary strategy, fault
//!   placement, protocol, network timing, seed range, and oracle mode;
//!   built programmatically ([`Scenario::builder`](scenario::Scenario::builder))
//!   or loaded from TOML/JSON campaign files ([`parse`]);
//! - [`topology`] — deterministic instantiation of the topology families
//!   (the paper's figures, random `k`-OSR / Byzantine-safe graphs, and the
//!   Erdős–Rényi / scale-free / clustered / perturbed families from
//!   [`scup_graph::generators`]);
//! - [`adversary`] — the strategy registry unifying the per-protocol
//!   Byzantine actors (silent, crash, echo, equivocate, forged-slice)
//!   behind one name lookup;
//! - [`protocol`] — drivers for the positive Stellar pipeline, the
//!   negative local-slices pipeline, and the BFT-CUP baseline;
//! - [`oracle`] — agreement / validity / termination invariant oracles
//!   judged with the `stellar-cup` and `scup-graph` predicates, plus the
//!   structural premise that makes "must this run succeed?" precise;
//! - [`campaign`] — the parallel runner: scenario × seed fan-out across
//!   threads, deterministic per-run results, structured JSON reports;
//! - [`json`] / [`parse`] — the offline JSON/TOML layer;
//! - [`perfetto`] — Chrome-trace export of sampled runs (first seed per
//!   scenario, simulator ticks rendered as trace microseconds).
//!
//! # Example
//!
//! ```
//! use scup_harness::campaign::Campaign;
//! use scup_harness::scenario::{FaultPlacement, Scenario, TopologySpec};
//!
//! let campaign = Campaign {
//!     name: "doc".into(),
//!     mode: Default::default(),
//!     threads: 2,
//!     scenarios: vec![Scenario::builder("fig2")
//!         .topology(TopologySpec::Fig2)
//!         .faults(FaultPlacement::Ids(vec![5]))
//!         .seeds(0, 4)
//!         .build()],
//! };
//! let report = campaign.run();
//! assert!(report.all_passed());
//! assert_eq!(report.runs.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod campaign;
pub mod forensics;
pub mod json;
pub mod oracle;
pub mod parse;
pub mod perfetto;
pub mod protocol;
pub mod scenario;
pub mod topology;

pub use adversary::{AdversaryKind, AdversaryRegistry, AdversaryStrategy};
pub use campaign::{Campaign, CampaignMode, CampaignReport, RunRecord};
pub use oracle::InvariantReport;
pub use parse::campaign_from_str;
pub use scenario::{
    ExploreSpec, FaultPlacement, FaultSpec, NetworkSpec, OracleMode, ProtocolSpec, Scenario,
    SearchMode, TopologySpec,
};
