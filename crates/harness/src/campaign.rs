//! Campaigns: a scenario matrix, a parallel runner, and structured
//! reports.
//!
//! A [`Campaign`] expands every scenario into `(scenario, seed)` run
//! specs and fans them out across worker threads. Each run is
//! deterministic in `(scenario, seed)` — topology, fault placement, and
//! the simulation schedule all derive from the seed — so the report is
//! identical whatever the thread count.
//!
//! Runs are **batched per worker**: worker `w` of `T` takes specs
//! `w, w + T, w + 2T, …` (a deterministic stride — no shared cursor, no mutex
//! on the results, and clusters of slow scenarios spread across workers
//! instead of landing on one). Allocation reuse happens *inside* each run,
//! where the time goes: the simulator recycles its dispatch buffers across
//! every event and each SCP node's compiled quorum engine reuses one
//! scratch for the whole run.

use std::time::Instant;

use scup_obs::progress::{ProgressCounter, Ticker};
use scup_scp::Value;

use crate::adversary::AdversaryRegistry;
use crate::json::Json;
use crate::oracle::{self, InvariantReport};
use crate::protocol;
use crate::scenario::Scenario;
use crate::topology;

/// How a campaign executes its scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignMode {
    /// Run `(scenario, seed)` samples through the timed simulator
    /// ([`Campaign::run`]).
    #[default]
    Sample,
    /// Exhaustively explore every schedule up to the scenario's
    /// [`ExploreSpec`](crate::scenario::ExploreSpec) bounds. Executed by
    /// the `scup-mc` crate (which depends on this one); [`Campaign::run`]
    /// always samples — the `scup-campaign` CLI dispatches on this flag.
    Explore,
}

impl CampaignMode {
    /// The mode name used in campaign files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignMode::Sample => "sample",
            CampaignMode::Explore => "explore",
        }
    }
}

/// A named batch of scenarios.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (used in the report and default output path).
    pub name: String,
    /// Execution mode (sampling or exhaustive exploration).
    pub mode: CampaignMode,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// The scenarios to run.
    pub scenarios: Vec<Scenario>,
}

/// The outcome of one `(scenario, seed)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Scenario name.
    pub scenario: String,
    /// Topology family name.
    pub family: String,
    /// Adversary reference.
    pub adversary: String,
    /// Protocol name.
    pub protocol: String,
    /// The run's seed.
    pub seed: u64,
    /// Number of processes.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// The faulty processes.
    pub faulty: Vec<u32>,
    /// Oracle verdict.
    pub invariants: InvariantReport,
    /// The agreed value when agreement held and someone decided.
    pub decided_value: Option<Value>,
    /// Messages sent across phases.
    pub messages_sent: u64,
    /// Messages delivered across phases.
    pub messages_delivered: u64,
    /// Bytes (per message `size_hint`) sent across phases.
    pub bytes_sent: u64,
    /// Timers fired across phases.
    pub timers_fired: u64,
    /// SCP ballot protocols started, summed over nodes (0 for BFT-CUP).
    pub ballots_started: u64,
    /// SCP nomination-phase confirmations, summed over nodes.
    pub nominations_confirmed: u64,
    /// SCP prepare-phase confirmations, summed over nodes.
    pub prepares_confirmed: u64,
    /// SCP commit-phase confirmations, summed over nodes.
    pub commits_confirmed: u64,
    /// The process that sent the most messages (traffic hotspot).
    pub hot_process: u32,
    /// Messages sent by that process.
    pub hot_sent: u64,
    /// Messages lost to the fault plan (0 without one).
    pub messages_dropped: u64,
    /// Extra deliveries injected by duplication faults.
    pub messages_duplicated: u64,
    /// Crash events executed by the fault plan.
    pub crashes: u64,
    /// Recovery events executed by the fault plan.
    pub recoveries: u64,
    /// Join events executed by the churn plan (0 without one).
    pub joins: u64,
    /// Leave events executed by the churn plan.
    pub departures: u64,
    /// Messages lost because an endpoint was dormant or departed (a
    /// subset of `messages_dropped`).
    pub churn_drops: u64,
    /// Messages re-sent by the protocols' retransmission layer.
    pub retransmissions: u64,
    /// log₂ histogram of retransmission delays (bucket `k` counts
    /// retransmit rounds that fired `[2^k, 2^(k+1))` ticks after being
    /// armed), summed across phases.
    pub retransmit_delay_buckets: Vec<u64>,
    /// Per-link fault-plane drop counters, sorted `(from, to, dropped)`.
    pub link_drops: Vec<(u32, u32, u64)>,
    /// Forensic analysis of the violation, when the run failed and the
    /// campaign ran with forensics on.
    pub forensics: Option<crate::forensics::ForensicReport>,
    /// Simulated end time.
    pub end_ticks: u64,
    /// Wall-clock duration of the run, microseconds.
    pub wall_micros: u64,
    /// Pass/fail under the scenario's oracle mode.
    pub passed: bool,
    /// A configuration error, if the run could not even start (bad
    /// adversary name, unsatisfiable fault placement).
    pub error: Option<String>,
}

/// The aggregated outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Every run, ordered by (scenario declaration order, seed).
    pub runs: Vec<RunRecord>,
    /// Wall-clock duration of the whole campaign, microseconds.
    pub wall_micros: u64,
}

impl Campaign {
    /// Runs every `(scenario, seed)` pair, in parallel.
    pub fn run(&self) -> CampaignReport {
        self.run_observed(false)
    }

    /// Like [`Campaign::run`], with an optional live progress ticker on
    /// stderr (`runs done/total`, once a second) for long campaigns.
    /// Progress output never touches stdout, so piped report JSON stays
    /// clean; the report is identical either way.
    pub fn run_observed(&self, progress: bool) -> CampaignReport {
        let started = Instant::now();
        let registry = AdversaryRegistry::builtin();

        let specs: Vec<(usize, &Scenario, u64)> = self
            .scenarios
            .iter()
            .enumerate()
            .flat_map(|(idx, s)| {
                (s.seed_base..s.seed_base + s.seeds).map(move |seed| (idx, s, seed))
            })
            .collect();

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(specs.len().max(1))
        } else {
            self.threads
        };

        // Strided batches: worker `w` runs specs `w, w + T, w + 2T, …` into its
        // own vector; records are re-slotted by spec index afterwards, so
        // the report is byte-identical whatever the thread count.
        let threads = threads.max(1);
        let counter = ProgressCounter::new();
        let ticker = progress.then(|| {
            Ticker::spawn(
                &format!("campaign `{}`", self.name),
                specs.len() as u64,
                counter.clone(),
                std::time::Duration::from_secs(1),
            )
        });
        let mut slots: Vec<Option<RunRecord>> = vec![None; specs.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let specs = &specs;
                    let registry = &registry;
                    let counter = counter.clone();
                    scope.spawn(move || {
                        let mut records = Vec::with_capacity(specs.len() / threads + 1);
                        for &(_, scenario, seed) in specs.iter().skip(w).step_by(threads) {
                            records.push(run_one(scenario, seed, registry));
                            counter.add(1);
                        }
                        records
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                let records = handle.join().expect("campaign worker panicked");
                for (k, record) in records.into_iter().enumerate() {
                    slots[w + k * threads] = Some(record);
                }
            }
        });
        if let Some(t) = ticker {
            t.finish();
        }
        let runs = slots
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();

        CampaignReport {
            name: self.name.clone(),
            threads,
            runs,
            wall_micros: started.elapsed().as_micros() as u64,
        }
    }
}

/// Executes one `(scenario, seed)` run.
pub fn run_one(scenario: &Scenario, seed: u64, registry: &AdversaryRegistry) -> RunRecord {
    let started = Instant::now();
    let mut record = RunRecord {
        scenario: scenario.name.clone(),
        family: scenario.topology.family_name().to_string(),
        adversary: scenario.adversary.clone(),
        protocol: scenario.protocol.name().to_string(),
        seed,
        n: 0,
        f: scenario.f,
        faulty: Vec::new(),
        invariants: InvariantReport {
            termination: false,
            termination_required: true,
            agreement: false,
            validity: None,
            pledges_ok: true,
            premise: false,
            violations: Vec::new(),
        },
        decided_value: None,
        messages_sent: 0,
        messages_delivered: 0,
        bytes_sent: 0,
        timers_fired: 0,
        ballots_started: 0,
        nominations_confirmed: 0,
        prepares_confirmed: 0,
        commits_confirmed: 0,
        hot_process: 0,
        hot_sent: 0,
        messages_dropped: 0,
        messages_duplicated: 0,
        crashes: 0,
        recoveries: 0,
        joins: 0,
        departures: 0,
        churn_drops: 0,
        retransmissions: 0,
        retransmit_delay_buckets: Vec::new(),
        link_drops: Vec::new(),
        forensics: None,
        end_ticks: 0,
        wall_micros: 0,
        passed: false,
        error: None,
    };

    let adversary = match registry.resolve(&scenario.adversary) {
        Ok(kind) => kind,
        Err(e) => {
            record.error = Some(e);
            record.wall_micros = started.elapsed().as_micros() as u64;
            return record;
        }
    };

    // Generators assert their parameter contracts (e.g. `scale_free needs
    // n >= m + 1`); a typo in one scenario must become that run's error,
    // not abort the whole campaign process.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_configured(scenario, seed, adversary, &mut record)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => record.error = Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            record.error = Some(format!("configuration panic: {msg}"));
        }
    }
    record.wall_micros = started.elapsed().as_micros() as u64;
    record
}

fn run_configured(
    scenario: &Scenario,
    seed: u64,
    adversary: crate::adversary::AdversaryKind,
    record: &mut RunRecord,
) -> Result<(), String> {
    let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
    record.n = kg.n();

    let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed)?;
    record.faulty = faulty.iter().map(|p| p.as_u32()).collect();

    let plan = scenario.fault_plan.to_plan();
    plan.validate(kg.n())?;
    // The simulator's installer panics on a bad plan; validating here turns
    // an out-of-range churn id into this run's error record instead.
    scenario.churn.to_plan(&kg).validate(kg.n())?;
    let output = protocol::execute(
        scenario.protocol,
        &kg,
        scenario.f,
        &faulty,
        adversary,
        &scenario.network,
        &scenario.fault_plan,
        &scenario.churn,
        scenario.resolved_inputs(kg.n()),
        seed,
    );

    // Graceful degradation: a plan that heals (or injects nothing) must
    // still terminate; an unhealed plan only owes safety. Churn itself
    // always quiesces (every join/leave is a one-shot event), so it never
    // waives termination on its own.
    let termination_required = plan.is_zero() || plan.heal_tick().is_some();
    let departed = scenario.churn.departed();
    let invariants = oracle::evaluate_churned(
        &kg,
        scenario.f,
        &faulty,
        &departed,
        &output.inputs,
        &output.decisions,
        adversary,
        termination_required,
        &output.pledge_violations,
        scenario.validity,
    );

    record.decided_value = if invariants.agreement {
        kg.processes()
            .filter(|i| !faulty.contains(*i))
            .find_map(|i| output.decisions[i.index()])
    } else {
        None
    };
    // `expect_violation` scenarios are exhibits: they pass exactly when
    // the oracle *catches* the staged misconfiguration. Runs that errored
    // out never pass either way.
    let ok = invariants.passes(scenario.oracle);
    record.passed = if scenario.expect_violation { !ok } else { ok };
    record.invariants = invariants;
    record.messages_sent = output.messages_sent;
    record.messages_delivered = output.messages_delivered;
    record.bytes_sent = output.bytes_sent;
    record.timers_fired = output.timers_fired;
    for ns in &output.node_stats {
        record.ballots_started += ns.ballots_started;
        record.nominations_confirmed += ns.nominations_confirmed;
        record.prepares_confirmed += ns.prepares_confirmed;
        record.commits_confirmed += ns.commits_confirmed;
    }
    if let Some((id, stats)) = output
        .per_process
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.sent)
    {
        record.hot_process = id as u32;
        record.hot_sent = stats.sent;
    }
    record.messages_dropped = output.messages_dropped;
    record.messages_duplicated = output.messages_duplicated;
    record.crashes = output.crashes;
    record.recoveries = output.recoveries;
    record.joins = output.joins;
    record.departures = output.departures;
    record.churn_drops = output.churn_drops;
    record.retransmissions = output.retransmissions;
    record.retransmit_delay_buckets = output.retransmit_delay_buckets.clone();
    record.link_drops = output
        .link_drops
        .iter()
        .map(|(&(from, to), &dropped)| (from, to, dropped))
        .collect();
    record.end_ticks = output.end_ticks;
    Ok(())
}

impl CampaignReport {
    /// Number of passing runs.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.passed).count()
    }

    /// Number of failing runs.
    pub fn failed(&self) -> usize {
        self.runs.len() - self.passed()
    }

    /// `true` when every run passed its oracle mode.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }

    /// The report as structured JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("campaign", Json::Str(self.name.clone())),
            ("threads", Json::Int(self.threads as i64)),
            ("total_runs", Json::Int(self.runs.len() as i64)),
            ("passed", Json::Int(self.passed() as i64)),
            ("failed", Json::Int(self.failed() as i64)),
            ("wall_micros", Json::Int(self.wall_micros as i64)),
            (
                "runs",
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }
}

impl RunRecord {
    /// The record as structured JSON.
    pub fn to_json(&self) -> Json {
        let inv = &self.invariants;
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("family", Json::Str(self.family.clone())),
            ("adversary", Json::Str(self.adversary.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            ("seed", Json::Int(self.seed as i64)),
            ("n", Json::Int(self.n as i64)),
            ("f", Json::Int(self.f as i64)),
            (
                "faulty",
                Json::Arr(self.faulty.iter().map(|&v| Json::Int(v as i64)).collect()),
            ),
            (
                "oracles",
                Json::obj([
                    ("termination", Json::Bool(inv.termination)),
                    ("termination_required", Json::Bool(inv.termination_required)),
                    ("agreement", Json::Bool(inv.agreement)),
                    ("pledges_ok", Json::Bool(inv.pledges_ok)),
                    (
                        "validity",
                        inv.validity.map(Json::Bool).unwrap_or(Json::Null),
                    ),
                    ("premise", Json::Bool(inv.premise)),
                    (
                        "violations",
                        Json::Arr(
                            inv.violations
                                .iter()
                                .map(|v| Json::Str(v.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "decided_value",
                self.decided_value
                    .map(|v| Json::Int(v as i64))
                    .unwrap_or(Json::Null),
            ),
            ("messages_sent", Json::Int(self.messages_sent as i64)),
            (
                "metrics",
                Json::obj([
                    (
                        "messages_delivered",
                        Json::Int(self.messages_delivered as i64),
                    ),
                    ("bytes_sent", Json::Int(self.bytes_sent as i64)),
                    ("timers_fired", Json::Int(self.timers_fired as i64)),
                    ("ballots_started", Json::Int(self.ballots_started as i64)),
                    (
                        "nominations_confirmed",
                        Json::Int(self.nominations_confirmed as i64),
                    ),
                    (
                        "prepares_confirmed",
                        Json::Int(self.prepares_confirmed as i64),
                    ),
                    (
                        "commits_confirmed",
                        Json::Int(self.commits_confirmed as i64),
                    ),
                    ("hot_process", Json::Int(self.hot_process as i64)),
                    ("hot_sent", Json::Int(self.hot_sent as i64)),
                    ("messages_dropped", Json::Int(self.messages_dropped as i64)),
                    (
                        "messages_duplicated",
                        Json::Int(self.messages_duplicated as i64),
                    ),
                    ("crashes", Json::Int(self.crashes as i64)),
                    ("recoveries", Json::Int(self.recoveries as i64)),
                    ("joins", Json::Int(self.joins as i64)),
                    ("departures", Json::Int(self.departures as i64)),
                    ("churn_drops", Json::Int(self.churn_drops as i64)),
                    ("retransmissions", Json::Int(self.retransmissions as i64)),
                    (
                        "retransmit_delay_buckets",
                        Json::Arr(
                            self.retransmit_delay_buckets
                                .iter()
                                .map(|&c| Json::Int(c as i64))
                                .collect(),
                        ),
                    ),
                    (
                        "link_drops",
                        Json::Arr(
                            self.link_drops
                                .iter()
                                .map(|&(from, to, dropped)| {
                                    Json::obj([
                                        ("from", Json::Int(from as i64)),
                                        ("to", Json::Int(to as i64)),
                                        ("dropped", Json::Int(dropped as i64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "forensics",
                self.forensics
                    .as_ref()
                    .map(|f| f.to_json())
                    .unwrap_or(Json::Null),
            ),
            ("end_ticks", Json::Int(self.end_ticks as i64)),
            ("wall_micros", Json::Int(self.wall_micros as i64)),
            ("passed", Json::Bool(self.passed)),
            (
                "error",
                self.error
                    .as_ref()
                    .map(|e| Json::Str(e.clone()))
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultPlacement, OracleMode, TopologySpec};

    fn tiny_campaign(threads: usize) -> Campaign {
        Campaign {
            name: "test".into(),
            mode: CampaignMode::Sample,
            threads,
            scenarios: vec![
                Scenario::builder("fig2-silent")
                    .topology(TopologySpec::Fig2)
                    .faults(FaultPlacement::Ids(vec![5]))
                    .seeds(0, 3)
                    .build(),
                // Fig. 1 is 1-OSR, so BFT-CUP needs f = 0 there.
                Scenario::builder("fig1-bft")
                    .topology(TopologySpec::Fig1)
                    .f(0)
                    .protocol(crate::scenario::ProtocolSpec::BftCup)
                    .faults(FaultPlacement::None)
                    .seeds(0, 2)
                    .build(),
                // A healing fault plan: loss + a crash–recover cycle, so
                // the fault-plane counters are live in these tests.
                Scenario::builder("fig2-nemesis")
                    .topology(TopologySpec::Fig2)
                    .faults(FaultPlacement::Ids(vec![5]))
                    .fault_plan(crate::scenario::FaultSpec {
                        loss: 0.3,
                        loss_until: 1_500,
                        crash: vec![2],
                        crash_at: 300,
                        recover_at: Some(2_000),
                        ..Default::default()
                    })
                    .network(crate::scenario::NetworkSpec {
                        max_ticks: 100_000,
                        ..Default::default()
                    })
                    .seeds(0, 2)
                    .build(),
            ],
        }
    }

    #[test]
    fn campaign_runs_and_passes() {
        let report = tiny_campaign(2).run();
        assert_eq!(report.runs.len(), 7);
        for run in &report.runs {
            assert!(
                run.passed,
                "{}/{} failed: {:?} {:?}",
                run.scenario, run.seed, run.invariants.violations, run.error
            );
            assert!(run.messages_delivered > 0, "delivery metrics populate");
            assert!(run.bytes_sent > 0, "byte metrics populate");
            assert!(run.hot_sent > 0, "hotspot metrics populate");
            if run.scenario == "fig2-silent" {
                // The SCP phase ran: ballot-phase counters must show it.
                assert!(run.ballots_started > 0, "scp ballot counters populate");
                assert!(run.commits_confirmed > 0);
            }
            if run.scenario == "fig2-nemesis" {
                // The fault plane ran: its counters must show it, and the
                // healing plan still owes (and delivers) termination.
                assert!(run.messages_dropped > 0, "loss counters populate");
                // One planned crash–recover cycle, but the two pipeline
                // phases (knowledge-increase, consensus) run on
                // independent sim clocks and each installs the plan — so
                // the cycle fires once per phase.
                assert_eq!((run.crashes, run.recoveries), (2, 2));
                assert!(run.retransmissions > 0, "retransmission populates");
                // Backoff observability: every retransmit round lands in
                // some log₂ delay bucket, and every fault-plane drop is
                // attributed to its link.
                assert!(
                    run.retransmit_delay_buckets.iter().sum::<u64>() > 0,
                    "retransmit delay histogram populates"
                );
                assert_eq!(
                    run.link_drops.iter().map(|&(_, _, d)| d).sum::<u64>(),
                    run.messages_dropped,
                    "per-link drops account for every dropped message"
                );
                assert!(run.invariants.termination_required);
                assert!(run.invariants.termination);
            } else {
                // Fault-free scenarios never touch the fault plane.
                assert_eq!(run.messages_dropped + run.messages_duplicated, 0);
                assert_eq!(run.crashes + run.recoveries + run.retransmissions, 0);
                assert!(run.retransmit_delay_buckets.is_empty());
                assert!(run.link_drops.is_empty());
            }
        }
        assert!(report.all_passed());
    }

    #[test]
    fn report_is_independent_of_thread_count() {
        // The batched runner must produce bit-identical deterministic
        // fields whatever the worker count (1 = one batch, 2 = even split,
        // 8 = more workers than specs).
        let a = tiny_campaign(1).run();
        for threads in [2, 4, 8] {
            let b = tiny_campaign(threads).run();
            assert_eq!(a.runs.len(), b.runs.len());
            for (x, y) in a.runs.iter().zip(&b.runs) {
                assert_eq!((&x.scenario, x.seed), (&y.scenario, y.seed), "ordering");
                assert_eq!(x.family, y.family);
                assert_eq!(x.faulty, y.faulty);
                assert_eq!(x.decided_value, y.decided_value);
                assert_eq!(x.messages_sent, y.messages_sent);
                assert_eq!(x.messages_delivered, y.messages_delivered);
                assert_eq!(x.bytes_sent, y.bytes_sent);
                assert_eq!(x.timers_fired, y.timers_fired);
                assert_eq!(
                    (x.ballots_started, x.nominations_confirmed),
                    (y.ballots_started, y.nominations_confirmed)
                );
                assert_eq!((x.hot_process, x.hot_sent), (y.hot_process, y.hot_sent));
                assert_eq!(x.end_ticks, y.end_ticks);
                // The fault plane draws from the per-run RNG stream, so
                // its counters are part of the determinism contract too.
                assert_eq!(x.messages_dropped, y.messages_dropped);
                assert_eq!(x.messages_duplicated, y.messages_duplicated);
                assert_eq!((x.crashes, x.recoveries), (y.crashes, y.recoveries));
                assert_eq!(x.retransmissions, y.retransmissions);
                assert_eq!(x.retransmit_delay_buckets, y.retransmit_delay_buckets);
                assert_eq!(x.link_drops, y.link_drops);
                assert_eq!(x.invariants, y.invariants);
                assert_eq!(x.passed, y.passed);
                assert_eq!(x.error, y.error);
            }
        }
    }

    #[test]
    fn bad_adversary_is_a_run_error_not_a_panic() {
        let mut c = tiny_campaign(1);
        c.scenarios[0].adversary = "wat".into();
        let report = c.run();
        let bad: Vec<_> = report.runs.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(bad.len(), 3);
        assert!(!report.all_passed());
    }

    #[test]
    fn invalid_topology_parameters_are_a_run_error_not_a_process_abort() {
        // scale_free asserts n >= m + 1; the panic must be contained.
        let report = Campaign {
            name: "bad-params".into(),
            mode: CampaignMode::Sample,
            threads: 2,
            scenarios: vec![Scenario::builder("impossible")
                .topology(TopologySpec::ScaleFree { n: 3, m: 4 })
                .seeds(0, 2)
                .build()],
        }
        .run();
        assert_eq!(report.runs.len(), 2);
        for run in &report.runs {
            let err = run.error.as_ref().expect("run carries the error");
            assert!(err.contains("n >= m + 1"), "{err}");
            assert!(!run.passed);
        }
    }

    #[test]
    fn json_report_shape() {
        let report = Campaign {
            name: "shape".into(),
            mode: CampaignMode::Sample,
            threads: 1,
            scenarios: vec![Scenario::builder("s")
                .topology(TopologySpec::Fig2)
                .faults(FaultPlacement::Ids(vec![0]))
                .seeds(0, 1)
                .build()],
        }
        .run();
        let json = report.to_json();
        assert_eq!(json.get("campaign").unwrap().as_str(), Some("shape"));
        assert_eq!(json.get("total_runs").unwrap().as_i64(), Some(1));
        let run = &json.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("family").unwrap().as_str(), Some("fig2"));
        let oracles = run.get("oracles").unwrap();
        assert_eq!(oracles.get("agreement").unwrap().as_bool(), Some(true));
        // The JSON must parse back.
        assert!(crate::json::parse(&json.pretty()).is_ok());
    }

    #[test]
    fn observe_mode_never_fails() {
        // Non-converging runs burn events until `max_ticks` (SCP ballot
        // timers re-arm forever), so exploratory sweeps get a small
        // horizon.
        let network = crate::scenario::NetworkSpec {
            max_ticks: 30_000,
            ..Default::default()
        };
        let report = Campaign {
            name: "er".into(),
            mode: CampaignMode::Sample,
            threads: 0,
            scenarios: vec![Scenario::builder("er")
                .topology(TopologySpec::ErdosRenyi { n: 8, p: 0.2 })
                .faults(FaultPlacement::None)
                .network(network)
                .oracle(OracleMode::Observe)
                .seeds(0, 4)
                .build()],
        }
        .run();
        assert!(report.all_passed());
    }
}
