//! Causal-forensics acceptance tests: failing runs get self-explaining
//! reports (cone strictly inside the event log, provenance chains rooted
//! at initial proposals), and arming forensics never changes a run's
//! outcome.

use scup_harness::campaign::{run_one, Campaign, CampaignMode};
use scup_harness::forensics::{attach_failures, ForensicReport};
use scup_harness::scenario::{
    FaultPlacement, FaultSpec, NetworkSpec, ProtocolSpec, Scenario, TopologySpec,
};
use scup_harness::{protocol, topology, AdversaryRegistry};
use stellar_cup::attempts::LocalSliceStrategy;

/// The split-quorum disaster, sampled: two bridgeless 2-clusters with
/// local survive-f slices and conflicting inputs — agreement fails on
/// every seed.
fn split_quorums_bad() -> Scenario {
    Scenario::builder("split-quorums-bad")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .network(NetworkSpec {
            max_ticks: 50_000,
            ..Default::default()
        })
        // Seeds pinned to the pair `campaigns/forensics.toml` samples: on
        // some seeds the agreement anchors' cones cover the whole (tiny)
        // event log, which is legal but makes a dull exhibit.
        .seeds(0, 2)
        .build()
}

/// The nemesis pledge violation: process 2 crashes mid-ballot and
/// recovers with amnesia, then contradicts its journaled prepare votes
/// (seed 1 is pinned failing; see `campaigns/forensics.toml`).
fn amnesia_pledge() -> Scenario {
    Scenario::builder("amnesia-pledge")
        .topology(TopologySpec::Fig2)
        .f(1)
        .faults(FaultPlacement::Ids(vec![5]))
        .fault_plan(FaultSpec {
            crash: vec![2],
            crash_at: 600,
            recover_at: Some(3000),
            amnesia: vec![2],
            ..Default::default()
        })
        .network(NetworkSpec {
            max_ticks: 150_000,
            ..Default::default()
        })
        .seeds(1, 1)
        .build()
}

fn assert_explains(forensics: &ForensicReport) {
    assert!(
        !forensics.cone.is_empty() && forensics.cone.len() < forensics.total_events,
        "{}: cone ({}) must be a strict subset of the event log ({})",
        forensics.scenario,
        forensics.cone.len(),
        forensics.total_events
    );
    assert!(!forensics.chains.is_empty(), "chains for every anchor");
    for chain in &forensics.chains {
        assert!(
            chain.rooted,
            "{} p{}: unresolved {:?}",
            forensics.scenario, chain.process, chain.unresolved
        );
        assert!(
            chain.roots.iter().any(|r| r.contains("propose")),
            "{} p{}: roots must be initial proposals, got {:?}",
            forensics.scenario,
            chain.process,
            chain.roots
        );
    }
    assert!(forensics.dot.starts_with("digraph"), "DOT render present");
}

#[test]
fn split_quorum_failure_yields_a_rooted_forensic_cone() {
    let campaign = Campaign {
        name: "forensics-split".into(),
        mode: CampaignMode::Sample,
        threads: 1,
        scenarios: vec![split_quorums_bad()],
    };
    let mut report = campaign.run();
    assert!(!report.all_passed(), "the split must violate agreement");
    let attached = attach_failures(&campaign, &mut report);
    assert_eq!(attached, report.runs.len(), "every failure gets analyzed");
    for run in &report.runs {
        let forensics = run.forensics.as_ref().expect("attached analysis");
        assert_eq!(forensics.scenario, "split-quorums-bad");
        assert_eq!(forensics.seed, run.seed);
        // The agreement finding names the two disagreeing processes and
        // both decision islands get provenance chains.
        assert_eq!(forensics.anchors.len(), 2);
        assert_eq!(forensics.chains.len(), 2);
        assert_explains(forensics);
        // The two clusters decided different values from different roots.
        let roots: Vec<&String> = forensics.chains.iter().flat_map(|c| &c.roots).collect();
        assert!(roots.iter().any(|r| r.contains("nominate(1)")));
        assert!(roots.iter().any(|r| r.contains("nominate(2)")));
    }
    // The analyses are embedded in the report JSON.
    let json = report.to_json();
    let first = &json.get("runs").unwrap().as_arr().unwrap()[0];
    let block = first.get("forensics").unwrap();
    assert!(block.get("chains").is_some());
}

#[test]
fn amnesia_pledge_violation_is_explained() {
    let scenario = amnesia_pledge();
    let record = run_one(&scenario, 1, &AdversaryRegistry::builtin());
    assert!(!record.passed);
    assert!(
        record
            .invariants
            .violations
            .iter()
            .any(|v| v.starts_with("durability") && v.contains("contradictory")),
        "got {:?}",
        record.invariants.violations
    );
    let forensics = ForensicReport::analyze_run(&scenario, 1, &record.invariants.violations)
        .expect("the scenario reconfigures deterministically");
    assert_eq!(forensics.anchors, vec![2], "the amnesiac anchors the cone");
    assert_explains(&forensics);
    // The crash and the amnesiac recovery are inside the cone — the DOT
    // render names them on process 2's track.
    assert!(forensics.dot.contains("crash p2"), "crash event in cone");
    assert!(forensics.dot.contains("recover p2"), "recovery in cone");
}

#[test]
fn forensics_never_changes_the_outcome() {
    // Arming forensics must be invisible to everything but the causal
    // graph and provenance fields: identical decisions, identical
    // traffic, identical pledge findings — on a passing scenario and on
    // both failing ones.
    let registry = AdversaryRegistry::builtin();
    let fig2 = Scenario::builder("fig2")
        .topology(TopologySpec::Fig2)
        .faults(FaultPlacement::Ids(vec![5]))
        .build();
    for scenario in [fig2, split_quorums_bad(), amnesia_pledge()] {
        for seed in [scenario.seed_base, scenario.seed_base + 1] {
            let adversary = registry.resolve(&scenario.adversary).unwrap();
            let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
            let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed).unwrap();
            let run = |forensics: bool| {
                protocol::execute_observed(
                    scenario.protocol,
                    &kg,
                    scenario.f,
                    &faulty,
                    adversary,
                    &scenario.network,
                    &scenario.fault_plan,
                    &scenario.churn,
                    scenario.resolved_inputs(kg.n()),
                    seed,
                    false,
                    forensics,
                )
                .0
            };
            let off = run(false);
            let on = run(true);
            assert_eq!(off.decisions, on.decisions, "{} seed {seed}", scenario.name);
            assert_eq!(off.inputs, on.inputs);
            assert_eq!(off.messages_sent, on.messages_sent);
            assert_eq!(off.messages_delivered, on.messages_delivered);
            assert_eq!(off.messages_dropped, on.messages_dropped);
            assert_eq!(off.retransmissions, on.retransmissions);
            assert_eq!(off.pledge_violations, on.pledge_violations);
            assert_eq!(off.retransmit_delay_buckets, on.retransmit_delay_buckets);
            assert_eq!(off.link_drops, on.link_drops);
            // Off really is off: nothing recorded, nothing allocated.
            assert!(off.causal.is_empty() && !off.causal.is_enabled());
            assert!(off.provenance.iter().all(|log| log.entries().is_empty()));
            assert!(!on.causal.is_empty(), "on really records");
        }
    }
}

#[test]
fn forensics_campaign_file_fails_every_run_and_attaches() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../campaigns/forensics.toml"),
    )
    .expect("campaigns/forensics.toml");
    let mut campaign = scup_harness::campaign_from_str(&text).unwrap();
    campaign.threads = 2;
    assert_eq!(campaign.mode, CampaignMode::Sample);
    let mut report = campaign.run();
    assert_eq!(report.failed(), report.runs.len(), "failing is its job");
    let attached = attach_failures(&campaign, &mut report);
    assert_eq!(attached, report.runs.len());
    for run in &report.runs {
        assert_explains(run.forensics.as_ref().expect("analysis attached"));
    }
}

#[test]
fn equivocation_pairs_are_attributed_in_the_cone() {
    // Fig. 2 with an equivocating process 5: the consensus phase records
    // same-slot/different-payload send pairs, and the forensic cone must
    // name the equivocator even though the sibling sends share no causal
    // edge with the anchors.
    let scenario = Scenario::builder("equivocation-attribution")
        .topology(TopologySpec::Fig2)
        .f(1)
        .adversary("equivocate")
        .faults(FaultPlacement::Ids(vec![5]))
        .build();
    let registry = AdversaryRegistry::builtin();
    let adversary = registry.resolve(&scenario.adversary).unwrap();
    let seed = 0;
    let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
    let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed).unwrap();
    let (output, _, _) = protocol::execute_observed(
        scenario.protocol,
        &kg,
        scenario.f,
        &faulty,
        adversary,
        &scenario.network,
        &scenario.fault_plan,
        &scenario.churn,
        scenario.resolved_inputs(kg.n()),
        seed,
        false,
        true,
    );
    assert!(
        !output.causal.equivocations().is_empty(),
        "the equivocator's same-slot splits must be recorded"
    );
    // Anchor the cone on every acting process (a violation text that
    // names nobody), so the delivered half of each pair is inside it.
    let report = ForensicReport::build(
        "equivocation-attribution",
        seed,
        &["staged: agreement stressed by an equivocator".to_string()],
        &output,
    );
    assert!(
        !report.equivocations.is_empty(),
        "pairs intersecting the cone must be attributed"
    );
    for line in &report.equivocations {
        assert!(line.contains("p5"), "attribution names the origin: {line}");
    }
    let json = report.to_json().pretty();
    assert!(
        json.contains("equivocations"),
        "pairs land in the JSON block"
    );
}
