//! Property-based tests for the fault-injection plane.
//!
//! The graceful-degradation contract, stated over *arbitrary* fault
//! plans rather than the hand-picked nemesis scenarios:
//!
//! - a plan whose every window heals by some tick (and whose crashes all
//!   recover) still terminates AND agrees — retransmission + the durable
//!   journal owe full liveness once the network is civil again;
//! - a plan that never heals owes safety only: agreement and the pledge
//!   discipline must hold on whatever the survivors managed, and the
//!   oracle must not demand termination;
//! - the all-zero plan is not merely "no observable faults" but
//!   *bit-identical* to a run with no fault plane at all — zero extra
//!   RNG draws, zero retransmission timers, identical schedules — across
//!   every worker count.

use proptest::prelude::*;
use scup_harness::campaign::{run_one, Campaign, CampaignMode};
use scup_harness::scenario::{
    FaultPlacement, FaultSpec, NetworkSpec, OracleMode, Scenario, TopologySpec,
};
use scup_harness::AdversaryRegistry;

/// The fig. 2 system (7 processes, 4-member sink {0..3}), one silent
/// Byzantine outsider — the workhorse sampling scenario.
fn fig2(spec: Option<FaultSpec>, max_ticks: u64) -> Scenario {
    let mut b = Scenario::builder("fig2-prop")
        .topology(TopologySpec::Fig2)
        .faults(FaultPlacement::Ids(vec![5]))
        .network(NetworkSpec {
            max_ticks,
            ..Default::default()
        })
        .oracle(OracleMode::Require);
    if let Some(spec) = spec {
        b = b.fault_plan(spec);
    }
    b.build()
}

/// A fault spec whose every window closes by tick ~2000 and whose
/// crashes recover: `to_plan().heal_tick()` is always `Some`.
fn healing_spec() -> impl Strategy<Value = FaultSpec> {
    let knobs = (
        (0u32..=4, 100u64..=900),  // loss tenths, loss_until
        (0u32..=3, 100u64..=900),  // dup tenths, dup_until
        (0u64..=25, 100u64..=900), // extra delay ticks, until
    );
    let partition = prop_oneof![
        Just(Vec::new()),
        Just(vec![0u32, 1]),
        Just(vec![2u32]),
        Just(vec![4u32, 6]),
    ];
    let crash = prop_oneof![
        Just(Vec::new()),
        Just(vec![0u32]),
        Just(vec![2u32]),
        Just(vec![6u32]),
    ];
    (knobs, partition, (0u64..=300), crash, (0u64..=400)).prop_map(
        |(((loss, loss_until), (dup, dup_until), (delay, delay_until)), part, from, crash, at)| {
            FaultSpec {
                loss: loss as f64 * 0.1,
                loss_until,
                dup: dup as f64 * 0.1,
                dup_until,
                extra_delay: delay,
                extra_delay_until: delay_until,
                partition: part,
                partition_from: from,
                partition_until: from + 700,
                crash,
                crash_at: at,
                recover_at: Some(at + 1200),
                ..Default::default()
            }
        },
    )
}

/// A fault spec with at least one window that never closes.
fn unhealed_spec() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        // Lossy forever.
        (3u32..=7).prop_map(|tenths| FaultSpec {
            loss: tenths as f64 * 0.1,
            ..Default::default()
        }),
        // A sink member crashes and never comes back.
        (0u64..=400).prop_map(|at| FaultSpec {
            crash: vec![2],
            crash_at: at,
            recover_at: None,
            ..Default::default()
        }),
        // A permanent partition cutting two sink members off.
        (0u64..=200).prop_map(|from| FaultSpec {
            partition: vec![0, 1],
            partition_from: from,
            ..Default::default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn healing_plans_still_terminate_and_agree(
        spec in healing_spec(),
        seed in 0u64..1_000,
    ) {
        let plan = spec.to_plan();
        prop_assert!(
            plan.heal_tick().is_some() || plan.is_zero(),
            "generator contract: every window closes"
        );
        let run = run_one(&fig2(Some(spec), 100_000), seed, &AdversaryRegistry::builtin());
        prop_assert_eq!(&run.error, &None);
        prop_assert!(
            run.invariants.termination_required,
            "a healing plan owes termination"
        );
        prop_assert!(
            run.passed,
            "seed {} violated {:?}",
            seed,
            run.invariants.violations
        );
        prop_assert!(run.invariants.termination && run.invariants.agreement);
        prop_assert!(run.invariants.pledges_ok);
    }

    #[test]
    fn unhealed_plans_still_owe_safety(
        spec in unhealed_spec(),
        seed in 0u64..1_000,
    ) {
        let plan = spec.to_plan();
        prop_assert!(plan.heal_tick().is_none() && !plan.is_zero());
        let run = run_one(&fig2(Some(spec), 20_000), seed, &AdversaryRegistry::builtin());
        prop_assert_eq!(&run.error, &None);
        prop_assert!(
            !run.invariants.termination_required,
            "an unhealed plan owes safety only"
        );
        // Whatever the survivors decided must agree and honor pledges;
        // non-termination alone must not fail the run.
        prop_assert!(
            run.passed,
            "seed {} violated {:?}",
            seed,
            run.invariants.violations
        );
        prop_assert!(run.invariants.agreement && run.invariants.pledges_ok);
    }

    #[test]
    fn zero_plan_is_bit_identical_to_no_plan(seed in 0u64..10_000) {
        // `faults = {}`: a fault plane that injects nothing must not
        // perturb the run at all — same schedule, same counters, same
        // bytes. The spec explicitly asks for retransmission, but a zero
        // plan disables it (no extra timers), preserving the identity.
        let zero = FaultSpec::default();
        prop_assert!(zero.to_plan().is_zero());
        let registry = AdversaryRegistry::builtin();
        let mut with_plane = run_one(&fig2(Some(zero), 3_000_000), seed, &registry);
        let mut without = run_one(&fig2(None, 3_000_000), seed, &registry);
        with_plane.wall_micros = 0;
        without.wall_micros = 0;
        prop_assert_eq!(&with_plane, &without);
        prop_assert_eq!(with_plane.messages_dropped, 0);
        prop_assert_eq!(with_plane.messages_duplicated, 0);
        prop_assert_eq!(with_plane.crashes + with_plane.recoveries, 0);
        prop_assert_eq!(with_plane.retransmissions, 0);
    }
}

#[test]
fn zero_plan_campaign_reports_are_bit_identical_across_worker_counts() {
    // The campaign-level statement of the same contract, across 1/2/8
    // workers: a zero-fault campaign and a fault-free campaign produce
    // the same report, and sharding leaks into neither.
    let campaign = |spec: Option<FaultSpec>, threads: usize| {
        let mut scenario = fig2(spec, 3_000_000);
        scenario.seeds = 4;
        Campaign {
            name: "zero-plan-diff".into(),
            mode: CampaignMode::Sample,
            threads,
            scenarios: vec![scenario],
        }
    };
    let strip = |report: scup_harness::CampaignReport| -> Vec<scup_harness::RunRecord> {
        report
            .runs
            .into_iter()
            .map(|mut r| {
                r.wall_micros = 0;
                r
            })
            .collect()
    };
    let baseline = strip(campaign(None, 1).run());
    assert_eq!(baseline.len(), 4);
    assert!(baseline.iter().all(|r| r.passed));
    for threads in [1, 2, 8] {
        let zeroed = strip(campaign(Some(FaultSpec::default()), threads).run());
        assert_eq!(baseline, zeroed, "threads={threads}");
    }
}

/// The BFT-CUP fig. 2 system, fault-free placement, with a churn plan —
/// the configuration whose join/leave recovery paths (discovery
/// re-probes, Decide vouchers, AskDecision) are all exercised.
fn fig2_bft_churn(churn: scup_harness::scenario::ChurnSpec) -> Scenario {
    Scenario::builder("fig2-bft-churn-prop")
        .topology(TopologySpec::Fig2)
        .f(1)
        .faults(FaultPlacement::None)
        .protocol(scup_harness::scenario::ProtocolSpec::BftCup)
        .churn(churn)
        .network(NetworkSpec {
            max_ticks: 300_000,
            ..Default::default()
        })
        .oracle(OracleMode::Require)
        .build()
}

/// An arbitrary quiescing churn plan on fig. 2: joiners drawn from a
/// sink member (3) and/or the outsiders, an optional permanent leave of
/// outsider 6, staggered join ticks. Every plan quiesces by
/// construction (each event is one-shot), so termination is always owed
/// by the correct non-departing processes.
fn churn_spec() -> impl Strategy<Value = scup_harness::scenario::ChurnSpec> {
    let joins = prop_oneof![
        Just(Vec::new()),
        Just(vec![5u32]),
        Just(vec![3u32]),
        Just(vec![3u32, 5]),
    ];
    let leaves = prop_oneof![Just(Vec::new()), Just(vec![6u32])];
    (joins, 5_000u64..=30_000, 0u64..=600, leaves, 500u64..=2_000).prop_map(
        |(joins, join_at, join_stagger, leaves, leave_at)| scup_harness::scenario::ChurnSpec {
            joins,
            join_at,
            join_stagger,
            leaves,
            leave_at,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn quiesced_churn_still_terminates_and_agrees(
        churn in churn_spec(),
        seed in 0u64..1_000,
    ) {
        let run = run_one(&fig2_bft_churn(churn.clone()), seed, &AdversaryRegistry::builtin());
        prop_assert_eq!(&run.error, &None);
        prop_assert!(
            run.invariants.termination_required,
            "churn always quiesces, so termination is owed"
        );
        prop_assert!(
            run.passed,
            "seed {} churn {:?} violated {:?}",
            seed,
            churn,
            run.invariants.violations
        );
        prop_assert!(run.invariants.termination && run.invariants.agreement);
        prop_assert!(run.invariants.pledges_ok);
        prop_assert_eq!(run.joins, churn.joins.len() as u64);
        prop_assert_eq!(run.departures, churn.leaves.len() as u64);
    }
}

#[test]
fn zero_churn_campaign_reports_are_bit_identical_across_worker_counts() {
    // The churn-plane twin of the zero-fault differential, stated over
    // the full parse → run pipeline: a campaign whose scenario spells
    // out `churn = { }` produces the same report as one without the key,
    // across 1/2/8 workers — the plane is free until a plan is non-zero.
    let toml = |churn_line: &str| {
        format!(
            "name = \"zero-churn-diff\"\nthreads = 0\n\n[[scenario]]\n\
             name = \"fig2\"\ntopology = \"fig2\"\nf = 1\nadversary = \"silent\"\n\
             faulty = [5]\nprotocol = \"stellar-minimal\"\n{churn_line}\
             seeds = 4\noracle = \"require\"\n"
        )
    };
    let strip = |report: scup_harness::CampaignReport| -> Vec<scup_harness::RunRecord> {
        report
            .runs
            .into_iter()
            .map(|mut r| {
                r.wall_micros = 0;
                r
            })
            .collect()
    };
    let baseline_campaign = scup_harness::campaign_from_str(&toml("")).unwrap();
    let baseline = strip(baseline_campaign.run());
    assert_eq!(baseline.len(), 4);
    assert!(baseline.iter().all(|r| r.passed));
    for threads in [1usize, 2, 8] {
        let mut campaign = scup_harness::campaign_from_str(&toml("churn = { }\n")).unwrap();
        campaign.threads = threads;
        assert!(campaign.scenarios[0].churn.is_zero());
        let zeroed = strip(campaign.run());
        assert_eq!(baseline, zeroed, "threads={threads}");
        for (b, z) in baseline.iter().zip(&zeroed) {
            assert_eq!(b.joins + b.departures + b.churn_drops, 0);
            assert_eq!(z.joins + z.departures + z.churn_drops, 0);
        }
    }
}
