//! Canonical fingerprint helpers shared by the node and voting layers.
//!
//! Exploration hashes every actor once per visited state. The two big
//! per-node collections — the envelope dedup set and the slice registry —
//! only ever *grow* (or overwrite one key), so instead of re-walking them
//! per hash, the node and [`QuorumCheck`](crate::voting::QuorumCheck)
//! maintain **XOR multiset digests**: each entry contributes a well-mixed
//! 128-bit value, combined by XOR. Inserting XORs the entry in;
//! overwriting XORs the old entry out and the new one in. XOR is
//! order-independent, so the digest is a canonical function of the set's
//! *contents* — exactly what a state fingerprint needs — at O(1) per
//! mutation and O(1) per state hash instead of O(entries). It is also
//! trivially re-computable under a process-id renaming, which the model
//! checker's symmetry reduction exploits (no re-sorting step: rename each
//! entry, XOR).

use scup_fbqs::SliceFamily;
use scup_graph::ProcessId;
use scup_sim::{Perm, StateHasher};

use crate::statement::Statement;

/// Feeds a canonical fingerprint of a slice family into `h` (exploration
/// state hashing).
pub(crate) fn hash_family(h: &mut StateHasher, family: &SliceFamily) {
    match family {
        SliceFamily::Explicit(slices) => {
            h.write_u8(1);
            h.write_u64(slices.len() as u64);
            for s in slices {
                h.write_set(s);
            }
        }
        SliceFamily::AllSubsets { of, size } => {
            h.write_u8(2);
            h.write_set(of);
            h.write_u64(*size as u64);
        }
    }
}

/// Feeds a canonical fingerprint of a statement into `h`.
pub(crate) fn hash_statement(h: &mut StateHasher, stmt: &Statement) {
    match stmt {
        Statement::Nominate(v) => {
            h.write_u8(1);
            h.write_u64(*v);
        }
        Statement::Prepare(n, v) => {
            h.write_u8(2);
            h.write_u64(*n);
            h.write_u64(*v);
        }
        Statement::Commit(n, v) => {
            h.write_u8(3);
            h.write_u64(*n);
            h.write_u64(*v);
        }
    }
}

/// The digest contribution of one `(process, family)` registry entry.
pub(crate) fn family_entry_digest(i: ProcessId, family: &SliceFamily) -> u128 {
    let mut h = StateHasher::new();
    h.write_u32(i.as_u32());
    hash_family(&mut h, family);
    h.finish()
}

/// The digest contribution of one `(origin, statement, accept)` envelope
/// entry.
pub(crate) fn seen_entry_digest(origin: ProcessId, stmt: &Statement, accept: bool) -> u128 {
    let mut h = StateHasher::new();
    h.write_u32(origin.as_u32());
    hash_statement(&mut h, stmt);
    h.write_bool(accept);
    h.finish()
}

/// Feeds the fingerprint of `family` with every member id renamed through
/// `perm` — identical to `hash_family` of the renamed family (slice order
/// preserved; set words re-normalized by the renamed-set construction).
pub(crate) fn hash_family_perm(h: &mut StateHasher, family: &SliceFamily, perm: &Perm) {
    match family {
        SliceFamily::Explicit(slices) => {
            h.write_u8(1);
            h.write_u64(slices.len() as u64);
            for s in slices {
                h.write_set(&perm.apply_set(s));
            }
        }
        SliceFamily::AllSubsets { of, size } => {
            h.write_u8(2);
            h.write_set(&perm.apply_set(of));
            h.write_u64(*size as u64);
        }
    }
}

/// [`family_entry_digest`] of the renamed entry `(perm(i), perm(family))`.
pub(crate) fn family_entry_digest_perm(i: ProcessId, family: &SliceFamily, perm: &Perm) -> u128 {
    let mut h = StateHasher::new();
    h.write_u32(perm.apply(i).as_u32());
    hash_family_perm(&mut h, family, perm);
    h.finish()
}
