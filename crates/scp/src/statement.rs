//! Statements federated voting ranges over.

use std::fmt;

/// The value type SCP agrees on.
pub type Value = u64;

/// A statement subject to federated voting (vote → accept → confirm).
///
/// Nomination statements propose candidate values; ballot statements drive
/// the prepare/commit cascade for a specific ballot `(counter, value)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Statement {
    /// "Value `v` is a nominee."
    Nominate(
        /// The nominated value.
        Value,
    ),
    /// "Ballot `(counter, value)` is prepared" — no lower conflicting
    /// ballot can commit.
    Prepare(
        /// The ballot counter.
        u64,
        /// The ballot value.
        Value,
    ),
    /// "Ballot `(counter, value)` is committed."
    Commit(
        /// The ballot counter.
        u64,
        /// The ballot value.
        Value,
    ),
}

impl Statement {
    /// The value the statement is about.
    pub fn value(&self) -> Value {
        match self {
            Statement::Nominate(v) | Statement::Prepare(_, v) | Statement::Commit(_, v) => *v,
        }
    }

    /// The ballot counter, if this is a ballot statement.
    pub fn counter(&self) -> Option<u64> {
        match self {
            Statement::Nominate(_) => None,
            Statement::Prepare(n, _) | Statement::Commit(n, _) => Some(*n),
        }
    }

    /// `true` for nomination statements.
    pub fn is_nomination(&self) -> bool {
        matches!(self, Statement::Nominate(_))
    }

    /// SCP's abort semantics, reduced to this statement vocabulary: two
    /// statements contradict when no correct process may stand behind
    /// both.
    ///
    /// - `Commit(n, v)` vs `Commit(m, w)`: contradictory whenever
    ///   `v ≠ w` — committing two values is exactly the disagreement
    ///   consensus forbids.
    /// - `Prepare(m, w)` entails "every ballot `(k, u)` with `k ≤ m` and
    ///   `u ≠ w` is aborted", so it contradicts `Commit(n, v)` when
    ///   `v ≠ w` and `n ≤ m` (a committed ballot cannot also be aborted).
    /// - Nomination statements contradict nothing.
    ///
    /// Federated voting uses this as the accept ratchet: a process never
    /// *accepts* a statement contradicting one it already accepted (its
    /// plain votes may be overridden by a v-blocking set, its accepts may
    /// not). Quorum intersection then carries the ratchet across
    /// processes: two confirmed `Commit`s of different values would need
    /// a correct process in the quorum intersection to have accepted
    /// both.
    pub fn contradicts(&self, other: &Statement) -> bool {
        use Statement::*;
        match (*self, *other) {
            (Commit(_, v), Commit(_, w)) => v != w,
            (Commit(n, v), Prepare(m, w)) | (Prepare(m, w), Commit(n, v)) => v != w && n <= m,
            _ => false,
        }
    }
}

impl fmt::Debug for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Nominate(v) => write!(f, "nominate({v})"),
            Statement::Prepare(n, v) => write!(f, "prepare({n}, {v})"),
            Statement::Commit(n, v) => write!(f, "commit({n}, {v})"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Statement::Nominate(7).value(), 7);
        assert_eq!(Statement::Prepare(3, 8).value(), 8);
        assert_eq!(Statement::Commit(3, 8).counter(), Some(3));
        assert_eq!(Statement::Nominate(7).counter(), None);
        assert!(Statement::Nominate(7).is_nomination());
        assert!(!Statement::Commit(1, 1).is_nomination());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Statement::Commit(1, 2),
            Statement::Nominate(9),
            Statement::Prepare(1, 2),
        ];
        v.sort();
        assert_eq!(v[0], Statement::Nominate(9));
    }

    #[test]
    fn display() {
        assert_eq!(Statement::Prepare(2, 5).to_string(), "prepare(2, 5)");
    }

    #[test]
    fn contradiction_relation() {
        let c = |a: Statement, b: Statement| a.contradicts(&b);
        // Two commits of different values always contradict; same value
        // never does, regardless of counters.
        assert!(c(Statement::Commit(1, 5), Statement::Commit(9, 6)));
        assert!(c(Statement::Commit(9, 5), Statement::Commit(1, 6)));
        assert!(!c(Statement::Commit(1, 5), Statement::Commit(9, 5)));
        // A higher (or equal) prepare of another value aborts the
        // committed ballot; a *lower* prepare of another value does not.
        assert!(c(Statement::Commit(2, 5), Statement::Prepare(3, 6)));
        assert!(c(Statement::Prepare(3, 6), Statement::Commit(2, 5)));
        assert!(c(Statement::Commit(2, 5), Statement::Prepare(2, 6)));
        assert!(!c(Statement::Commit(3, 5), Statement::Prepare(2, 6)));
        // Same-value prepares and commits live together.
        assert!(!c(Statement::Commit(2, 5), Statement::Prepare(7, 5)));
        // Prepares never contradict each other, nominations nothing.
        assert!(!c(Statement::Prepare(1, 5), Statement::Prepare(2, 6)));
        assert!(!c(Statement::Nominate(5), Statement::Commit(1, 6)));
        assert!(!c(Statement::Commit(1, 6), Statement::Nominate(5)));
    }
}
