//! Statements federated voting ranges over.

use std::fmt;

/// The value type SCP agrees on.
pub type Value = u64;

/// A statement subject to federated voting (vote → accept → confirm).
///
/// Nomination statements propose candidate values; ballot statements drive
/// the prepare/commit cascade for a specific ballot `(counter, value)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Statement {
    /// "Value `v` is a nominee."
    Nominate(
        /// The nominated value.
        Value,
    ),
    /// "Ballot `(counter, value)` is prepared" — no lower conflicting
    /// ballot can commit.
    Prepare(
        /// The ballot counter.
        u64,
        /// The ballot value.
        Value,
    ),
    /// "Ballot `(counter, value)` is committed."
    Commit(
        /// The ballot counter.
        u64,
        /// The ballot value.
        Value,
    ),
}

impl Statement {
    /// The value the statement is about.
    pub fn value(&self) -> Value {
        match self {
            Statement::Nominate(v) | Statement::Prepare(_, v) | Statement::Commit(_, v) => *v,
        }
    }

    /// The ballot counter, if this is a ballot statement.
    pub fn counter(&self) -> Option<u64> {
        match self {
            Statement::Nominate(_) => None,
            Statement::Prepare(n, _) | Statement::Commit(n, _) => Some(*n),
        }
    }

    /// `true` for nomination statements.
    pub fn is_nomination(&self) -> bool {
        matches!(self, Statement::Nominate(_))
    }
}

impl fmt::Debug for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Nominate(v) => write!(f, "nominate({v})"),
            Statement::Prepare(n, v) => write!(f, "prepare({n}, {v})"),
            Statement::Commit(n, v) => write!(f, "commit({n}, {v})"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Statement::Nominate(7).value(), 7);
        assert_eq!(Statement::Prepare(3, 8).value(), 8);
        assert_eq!(Statement::Commit(3, 8).counter(), Some(3));
        assert_eq!(Statement::Nominate(7).counter(), None);
        assert!(Statement::Nominate(7).is_nomination());
        assert!(!Statement::Commit(1, 1).is_nomination());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Statement::Commit(1, 2),
            Statement::Nominate(9),
            Statement::Prepare(1, 2),
        ];
        v.sort();
        assert_eq!(v[0], Statement::Nominate(9));
    }

    #[test]
    fn display() {
        assert_eq!(Statement::Prepare(2, 5).to_string(), "prepare(2, 5)");
    }
}
