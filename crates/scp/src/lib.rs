//! The Stellar Consensus Protocol (SCP) over federated Byzantine quorum
//! systems.
//!
//! SCP is the protocol the paper's analysis targets: given per-process
//! quorum slices, it solves consensus among the correct processes exactly
//! when they form a single maximal consensus cluster (Definitions 2–4,
//! \[16\]). This crate implements the protocol at the level the paper's
//! results speak to:
//!
//! - [`voting`]: **federated voting** — the vote → accept → confirm cascade
//!   where *accept* requires a quorum of votes through the voter's slices
//!   or a v-blocking set of accepts, and *confirm* requires a quorum of
//!   accepts. Every message carries the sender's declared slices
//!   (Section III-D: "each process `i` attaches `S_i` to all of the
//!   messages it sends"), and quorum checks run Algorithm 1 against those
//!   attached slices;
//! - [`statement`]: the nomination and ballot statements federated voting
//!   ranges over;
//! - [`node`]: the SCP node — echo-based nomination to converge on a
//!   candidate value, then a ballot protocol (prepare → commit →
//!   externalize) with per-ballot timeouts for partial synchrony, plus
//!   Byzantine node implementations (equivocating votes, forged slices).
//!
//! ## Faithfulness notes
//!
//! The ballot protocol is a streamlined rendering of Mazières'15 /
//! \[13\]: it keeps the federated-voting semantics, the prepare/commit
//! cascade, value locking across ballots and timeout-driven ballot bumps,
//! but drops the `(p, p', c, h)` abort bookkeeping of the production
//! wire format — the safety/liveness structure the paper's theorems rely
//! on (quorum intersection and availability of the consensus cluster) is
//! exactly preserved. See DESIGN.md for the substitution table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
pub mod node;
pub mod statement;
pub mod voting;

pub use node::{journal_contradictions, NodeStats, ScpConfig, ScpMsg, ScpNode};
pub use statement::{Statement, Value};
pub use voting::{QuorumCheck, VoteLevel, VoteTracker};
