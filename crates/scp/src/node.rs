//! The SCP node: nomination plus the ballot protocol, as a simulator actor.
//!
//! Protocol outline (per node):
//!
//! 1. **Nomination** — vote `nominate(x)` for the own input; *echo* other
//!    processes' nominees (vote for them too) until a first candidate is
//!    confirmed. Confirmed nominees form the candidate set; the ballot
//!    value is the maximum candidate (any deterministic combine works).
//! 2. **Ballots** — for ballot `n` with value `v` (the locked value if any,
//!    else the current candidate): vote `prepare(n, v)`; once `prepare` is
//!    confirmed, lock `v` and vote `commit(n, v)`; once `commit` is
//!    confirmed, **externalize** `v`. A per-ballot timer bumps `n` when the
//!    ballot stalls (partial synchrony: after `GST` some ballot completes).
//!
//! Every envelope carries its *origin* and the origin's declared slices;
//! federated voting evaluates quorums against those attached slices
//! (Algorithm 1) and v-blocking sets against the node's own slices.
//!
//! ## Envelope gossip
//!
//! Knowledge connectivity is directed: a process `j` may be unable to
//! address `i` even though `i`'s quorums depend on `j`'s pledges. Like the
//! Stellar overlay, nodes therefore **flood** every new envelope to every
//! process they know. Envelopes are origin-attributed; as in stellar-core,
//! they are signed, so relays cannot forge pledges of correct processes —
//! the simulator models signature verification by trusting the `origin`
//! field of relayed envelopes (Byzantine processes may still equivocate
//! *their own* envelopes arbitrarily).
//!
//! Flooding alone is not enough on slim topologies: a process learned
//! *late* (its identity arriving by relay after the core already
//! externalized) would never see the envelopes that flowed before it was
//! known, and its externalization could stall forever — the scale-free
//! `m = 2` straggler found by the PR-1 campaign sweeps. Nodes therefore
//! (a) register the *origin* of every relayed envelope in their knowledge
//! set, and (b) keep the full envelope backlog, re-sending it once to
//! every newly learned process so latecomers can replay the ballot and
//! externalize state they missed.

use scup_fbqs::SliceFamily;
use scup_graph::{PersistentSet, PersistentVec, ProcessId, ProcessSet};
use scup_obs::causal::{ProvEntry, ProvRule, ProvenanceLog};
use scup_sim::{
    Actor, Backoff, Context, Journal, RetransmitConfig, SimMessage, StateHasher, RETRANSMIT_TAG,
};

use crate::statement::{Statement, Value};
use crate::voting::{QuorumCheck, VoteLevel, VoteTracker};

use scup_sim::Perm;

use crate::fingerprint::{hash_family, hash_family_perm, hash_statement, seen_entry_digest};

/// An SCP envelope: a federated-voting pledge by `origin`, carrying the
/// origin's declared slices, relayed through the overlay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScpMsg {
    /// The process whose pledge this is (signature-verified in real
    /// Stellar; trusted here — see module docs).
    pub origin: ProcessId,
    /// The origin's declared slice family (`S_i` attached to every
    /// message, Section III-D). Shared: an envelope is cloned once per
    /// flood recipient and again on every snapshot of the pending event
    /// multiset, so the family rides behind an `Arc`.
    pub slices: std::sync::Arc<SliceFamily>,
    /// The statement being pledged.
    pub stmt: Statement,
    /// `true` for an accept-level pledge, `false` for a vote.
    pub accept: bool,
}

impl SimMessage for ScpMsg {
    fn size_hint(&self) -> usize {
        let slice_size = match self.slices.as_ref() {
            SliceFamily::Explicit(slices) => slices.iter().map(|s| 4 * s.len() + 2).sum::<usize>(),
            SliceFamily::AllSubsets { of, .. } => 4 * of.len() + 6,
        };
        slice_size + 22
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_u32(self.origin.as_u32());
        hash_family(h, &self.slices);
        hash_statement(h, &self.stmt);
        h.write_bool(self.accept);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        h.write_u32(perm.apply(self.origin).as_u32());
        hash_family_perm(h, &self.slices, perm);
        hash_statement(h, &self.stmt);
        h.write_bool(self.accept);
    }

    /// Equivocation attribution (forensics only). SCP envelopes are
    /// flood-gossiped: relays retransmit other origins' pledges verbatim,
    /// including both halves of an origin's equivocation, so a slot claim
    /// is only booked when the transmitter *is* the origin. Nomination is
    /// excluded — a correct node legitimately votes for many candidate
    /// values — while ballot pledges (Prepare/Commit) claim one value per
    /// `(kind, accept, counter)` position.
    fn equivocation_key(&self, sender: ProcessId) -> Option<(u64, u64)> {
        if sender != self.origin {
            return None;
        }
        let accept_bit = (self.accept as u64) << 61;
        match self.stmt {
            Statement::Nominate(_) => None,
            Statement::Prepare(n, v) => Some(((1 << 62) | accept_bit | n, v)),
            Statement::Commit(n, v) => Some(((2 << 62) | accept_bit | n, v)),
        }
    }
}

/// Configuration of an SCP node.
#[derive(Debug, Clone)]
pub struct ScpConfig {
    /// The node's quorum slices.
    pub slices: SliceFamily,
    /// The node's input value.
    pub input: Value,
    /// Base ballot timeout in ticks (grows linearly with the counter).
    pub ballot_timeout: u64,
    /// Fallback: if no candidate is confirmed by this many ticks, the own
    /// input is promoted to candidate so ballots can start.
    pub nomination_timeout: u64,
    /// Pledge-rebroadcast schedule for lossy networks (disabled by
    /// default, so fault-free runs keep their exact historical message
    /// counts and timer schedules). Must stay disabled under exploration:
    /// the backoff state is deliberately excluded from the fingerprint.
    pub retransmit: RetransmitConfig,
}

impl ScpConfig {
    /// A configuration with the given slices and input, and timeouts suited
    /// to a `Δ = 10` network.
    pub fn new(slices: SliceFamily, input: Value) -> Self {
        ScpConfig {
            slices,
            input,
            ballot_timeout: 200,
            nomination_timeout: 400,
            retransmit: RetransmitConfig::disabled(),
        }
    }
}

const NOMINATION_TIMER: u64 = 2;
/// Retransmission-round timer: the simulator-wide
/// [`scup_sim::RETRANSMIT_TAG`] (`u64::MAX`, far above any `n << 8`
/// ballot tag), so the runner's retransmission-delay histogram sees SCP's
/// rebroadcast rounds.
const RETRANSMIT_TIMER: u64 = RETRANSMIT_TAG;

// Durable journal record tags (see [`scup_sim::Journal`]). Word layouts:
// J_PLEDGE = [kind, counter, value, accept] with kind 0 = Nominate,
// 1 = Prepare, 2 = Commit; the others carry a single word.
const J_PLEDGE: u64 = 1;
const J_LOCK: u64 = 2;
const J_BALLOT: u64 = 3;
const J_EXTERNALIZE: u64 = 4;
const J_CANDIDATE: u64 = 5;

fn encode_stmt(stmt: Statement) -> (u64, u64, u64) {
    match stmt {
        Statement::Nominate(v) => (0, 0, v),
        Statement::Prepare(n, v) => (1, n, v),
        Statement::Commit(n, v) => (2, n, v),
    }
}

fn decode_stmt(kind: u64, n: u64, v: u64) -> Option<Statement> {
    match kind {
        0 => Some(Statement::Nominate(v)),
        1 => Some(Statement::Prepare(n, v)),
        2 => Some(Statement::Commit(n, v)),
        _ => None,
    }
}

/// Scans a process's durable journal for pledge contradictions — the
/// safety property crash–recovery must preserve: a recovered node may
/// re-announce its pre-crash pledges but must never pledge a *different*
/// value for the same ballot statement, nor externalize two values.
///
/// Only voluntary vote-level ballot pledges are scanned (nomination votes
/// legitimately range over many values, and accept-level pledges follow
/// the federated-voting evidence rather than the node's own choices).
pub fn journal_contradictions(journal: &dyn Journal) -> Vec<String> {
    let mut votes: std::collections::BTreeMap<(u64, u64), u64> = std::collections::BTreeMap::new();
    let mut externalized: Option<u64> = None;
    let mut out = Vec::new();
    for rec in journal.records() {
        match rec.tag {
            J_PLEDGE => {
                let [kind, n, v, accept] = rec.words[..] else {
                    continue;
                };
                if accept != 0 || kind == 0 {
                    continue;
                }
                if let Some(prev) = votes.insert((kind, n), v) {
                    if prev != v {
                        let what = if kind == 1 { "prepare" } else { "commit" };
                        out.push(format!(
                            "contradictory {what} votes for ballot {n}: {prev} then {v}"
                        ));
                    }
                }
            }
            J_EXTERNALIZE => {
                let [v] = rec.words[..] else { continue };
                if let Some(prev) = externalized {
                    if prev != v {
                        out.push(format!("externalized {prev} then {v}"));
                    }
                }
                externalized = Some(v);
            }
            _ => {}
        }
    }
    out
}

/// Per-node observational counters: message traffic by kind and ballot
/// protocol phase transitions.
///
/// Deliberately **not** part of the state fingerprint: two states that
/// differ only in how much effort it took to reach them are the same
/// state to the model checker (counters are path-dependent under
/// visited-state pruning), and the timed simulator reads them only after
/// a run. They ride along through [`Actor::fork`] like any other field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Envelopes delivered to this node (before dedup).
    pub envelopes_delivered: u64,
    /// Delivered envelopes dropped as duplicates (or own echoes).
    pub envelopes_duplicate: u64,
    /// Vote-level pledges this node originated.
    pub votes_sent: u64,
    /// Accept-level pledges this node originated.
    pub accepts_sent: u64,
    /// Envelopes re-sent to late-learned processes (straggler repair).
    pub catchup_envelopes: u64,
    /// Ballots entered (counter bumps included).
    pub ballots_started: u64,
    /// Nomination statements confirmed.
    pub nominations_confirmed: u64,
    /// Prepare statements confirmed (value locks).
    pub prepares_confirmed: u64,
    /// Commit statements confirmed (externalizations trigger here).
    pub commits_confirmed: u64,
    /// Envelopes re-flooded by retransmission rounds (pledge rebroadcast
    /// under a fault plan; always 0 with retransmission disabled).
    pub retransmissions: u64,
}

/// A correct SCP node.
#[derive(Clone)]
pub struct ScpNode {
    /// Immutable after construction; behind an `Arc` so exploration forks
    /// share it instead of deep-copying the slice family per visited state.
    config: std::sync::Arc<ScpConfig>,
    /// The own slice family as shared by every outgoing envelope.
    shared_slices: std::sync::Arc<SliceFamily>,
    tracker: VoteTracker,
    check: QuorumCheck,
    /// Envelopes already processed/relayed: (origin, stmt, accept).
    /// Persistent: the dedup set is the node's largest collection, and
    /// exploration forks a node per visited state — structural sharing
    /// makes the fork an `Arc` bump and each new envelope a one-chunk
    /// path copy.
    seen: PersistentSet<(ProcessId, Statement, bool)>,
    /// XOR multiset digest of `seen`, maintained incrementally so the
    /// per-state fingerprint is O(1) in the envelope count (see
    /// [`crate::fingerprint`]).
    seen_digest: u128,
    /// Every distinct envelope, kept for late-learned processes (see the
    /// module docs on straggler repair). Persistent append-only chunks:
    /// the previous whole-`Vec` copy-on-write re-cloned the entire history
    /// on the first append after every fork.
    backlog: PersistentVec<ScpMsg>,
    /// Processes already brought up to date with the backlog.
    synced: ProcessSet,
    /// Confirmed nominees.
    candidates: Vec<Value>,
    /// Highest ballot counter entered.
    ballot: u64,
    /// Value locked by a confirmed prepare.
    lock: Option<Value>,
    externalized: Option<Value>,
    /// Observational counters; excluded from both fingerprints.
    stats: NodeStats,
    /// Retransmission schedule state. Excluded from fingerprints:
    /// retransmission is a timed-simulation facility and must be disabled
    /// under exploration (see [`ScpConfig::retransmit`]).
    backoff: Backoff,
    /// Decision provenance (disabled by default; see
    /// [`ScpNode::enable_provenance`]). Pure observability: excluded from
    /// both fingerprints and preserved across crash recovery — the
    /// observer's notebook survives the process's amnesia.
    prov: ProvenanceLog,
}

impl ScpNode {
    /// Creates a node.
    pub fn new(config: ScpConfig) -> Self {
        Self::from_shared(std::sync::Arc::new(config))
    }

    fn from_shared(config: std::sync::Arc<ScpConfig>) -> Self {
        let shared_slices = std::sync::Arc::new(config.slices.clone());
        ScpNode {
            config,
            shared_slices,
            tracker: VoteTracker::new(),
            check: QuorumCheck::new(),
            seen: PersistentSet::new(),
            seen_digest: 0,
            backlog: PersistentVec::new(),
            synced: ProcessSet::new(),
            candidates: Vec::new(),
            ballot: 0,
            lock: None,
            externalized: None,
            stats: NodeStats::default(),
            backoff: Backoff::new(),
            prov: ProvenanceLog::disabled(),
        }
    }

    /// The externalized (decided) value, once consensus is reached.
    pub fn externalized(&self) -> Option<Value> {
        self.externalized
    }

    /// The current ballot counter (diagnostic).
    pub fn ballot_counter(&self) -> u64 {
        self.ballot
    }

    /// The confirmed candidate values (diagnostic).
    pub fn candidates(&self) -> &[Value] {
        &self.candidates
    }

    /// Message and ballot-phase counters (diagnostic; see [`NodeStats`]).
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Turns decision-provenance recording on: every vote, accept,
    /// confirm, candidate adoption, lock, externalization, and journal
    /// replay from now on logs a [`ProvEntry`] naming the rule that fired
    /// and the justifying process set. Off the bit-identity surface: the
    /// log is never fingerprinted and recording changes no protocol
    /// behaviour.
    pub fn enable_provenance(&mut self) {
        self.prov.enable();
    }

    /// The decision-provenance log (empty unless
    /// [`ScpNode::enable_provenance`] was called before the run).
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.prov
    }

    /// Logs a non-vote provenance entry; `entry` builds the
    /// `(statement, premises)` pair only when the log is enabled.
    fn prov_note(
        &mut self,
        me: ProcessId,
        rule: ProvRule,
        entry: impl FnOnce() -> (String, Vec<(u32, String)>),
    ) {
        if self.prov.is_enabled() {
            let (statement, premises) = entry();
            self.prov.push(ProvEntry {
                process: me.as_u32(),
                rule,
                statement,
                premises,
                support: Vec::new(),
                support_label: None,
            });
        }
    }

    /// Records an envelope in the dedup set, keeping the incremental
    /// digest in sync. Returns `true` when the envelope is new.
    fn note_seen(&mut self, origin: ProcessId, stmt: Statement, accept: bool) -> bool {
        if self.seen.insert((origin, stmt, accept)) {
            self.seen_digest ^= seen_entry_digest(origin, &stmt, accept);
            true
        } else {
            false
        }
    }

    fn broadcast_own(&mut self, ctx: &mut Context<'_, ScpMsg>, stmt: Statement, accept: bool) {
        let msg = ScpMsg {
            origin: ctx.self_id(),
            slices: std::sync::Arc::clone(&self.shared_slices),
            stmt,
            accept,
        };
        // Write-ahead: the pledge hits the durable journal before the
        // network, so a crash can never lose a pledge peers already saw.
        if let Some(j) = ctx.journal() {
            let (kind, n, v) = encode_stmt(stmt);
            j.append(J_PLEDGE, &[kind, n, v, accept as u64]);
        }
        self.note_seen(ctx.self_id(), stmt, accept);
        if accept {
            self.stats.accepts_sent += 1;
        } else {
            self.stats.votes_sent += 1;
        }
        self.backlog.push(msg.clone());
        ctx.broadcast_known(msg);
    }

    /// Straggler repair: sends the whole envelope backlog to processes we
    /// learned after those envelopes flowed. Newly learned processes join
    /// the regular flood from now on, so one catch-up each suffices.
    fn sync_latecomers(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        let me = ctx.self_id();
        if ctx.known().difference_len(&self.synced) == 0 {
            return;
        }
        let newcomers: Vec<ProcessId> = ctx
            .known()
            .iter()
            .filter(|&j| j != me && !self.synced.contains(j))
            .collect();
        for j in newcomers {
            for msg in self.backlog.iter() {
                ctx.send(j, msg.clone());
                self.stats.catchup_envelopes += 1;
            }
            self.synced.insert(j);
        }
    }

    /// Registers and broadcasts an own vote; `premises` names the earlier
    /// provenance entries that triggered it (built lazily — only when the
    /// vote is new *and* provenance is enabled).
    fn vote_because(
        &mut self,
        ctx: &mut Context<'_, ScpMsg>,
        stmt: Statement,
        premises: impl FnOnce() -> Vec<(u32, String)>,
    ) {
        if self.tracker.vote(ctx.self_id(), stmt) {
            if self.prov.is_enabled() {
                self.prov.push(ProvEntry {
                    process: ctx.self_id().as_u32(),
                    rule: ProvRule::Vote,
                    statement: format!("{stmt:?}"),
                    premises: premises(),
                    support: Vec::new(),
                    support_label: None,
                });
            }
            self.broadcast_own(ctx, stmt, false);
        }
    }

    /// The ballot value for the next ballot: the lock wins, else the best
    /// candidate, else the own input.
    fn ballot_value(&self) -> Value {
        self.lock
            .or_else(|| self.candidates.iter().max().copied())
            .unwrap_or(self.config.input)
    }

    fn start_ballot(&mut self, ctx: &mut Context<'_, ScpMsg>, n: u64) {
        if self.externalized.is_some() {
            return;
        }
        self.ballot = n;
        self.stats.ballots_started += 1;
        if let Some(j) = ctx.journal() {
            j.append(J_BALLOT, &[n]);
        }
        let v = self.ballot_value();
        let me = ctx.self_id().as_u32();
        let locked = self.lock.is_some();
        let from_candidate = !self.candidates.is_empty();
        self.vote_because(ctx, Statement::Prepare(n, v), || {
            // Where the ballot value came from: the lock wins, else the
            // best candidate, else the own input (see `ballot_value`).
            let source = if locked {
                format!("lock {v}")
            } else if from_candidate {
                format!("candidate {v}")
            } else {
                format!("propose {:?}", Statement::Nominate(v))
            };
            vec![(me, source)]
        });
        ctx.set_timer(self.config.ballot_timeout * (n + 1), n << 8);
        self.reevaluate(ctx);
    }

    /// Arms the next retransmission round, if the schedule has rounds
    /// left. No-op with retransmission disabled (the default).
    fn arm_retransmit(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        let cfg = self.config.retransmit.clone();
        if let Some(delay) = self.backoff.next_delay(&cfg, ctx.rng()) {
            ctx.set_timer(delay, RETRANSMIT_TIMER);
        }
    }

    /// One pledge-rebroadcast round: re-floods the entire envelope
    /// backlog to every known process. Ack-free — receivers absorb
    /// duplicates through `seen` — and sound against loss because the
    /// backlog holds every distinct envelope this node ever saw, own and
    /// relayed alike.
    fn retransmit_round(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        for msg in self.backlog.iter() {
            ctx.broadcast_known(msg.clone());
        }
        self.stats.retransmissions += self.backlog.len() as u64;
        self.arm_retransmit(ctx);
    }

    /// Runs the federated-voting rules and reacts to newly accepted /
    /// confirmed statements.
    fn reevaluate(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        loop {
            let changes = self.tracker.update_observed(
                ctx.self_id(),
                &self.config.slices,
                &mut self.check,
                &mut self.prov,
            );
            if changes.is_empty() {
                return;
            }
            let me = ctx.self_id();
            for (stmt, level) in changes {
                if level == VoteLevel::Accepted {
                    self.broadcast_own(ctx, stmt, true);
                }
                if level != VoteLevel::Confirmed {
                    continue;
                }
                match stmt {
                    Statement::Nominate(v) => {
                        self.stats.nominations_confirmed += 1;
                        if !self.candidates.contains(&v) {
                            self.candidates.push(v);
                            if let Some(j) = ctx.journal() {
                                j.append(J_CANDIDATE, &[v]);
                            }
                            self.prov_note(me, ProvRule::Candidate, || {
                                (
                                    format!("{v}"),
                                    vec![(me.as_u32(), format!("confirm {stmt:?}"))],
                                )
                            });
                        }
                        // First candidate: enter ballot 1.
                        if self.ballot == 0 {
                            self.start_ballot(ctx, 1);
                        }
                    }
                    Statement::Prepare(n, v) => {
                        self.stats.prepares_confirmed += 1;
                        // Lock the value and push for commit — unless the
                        // commit would contradict an accept we already
                        // pledged (a commit vote we could never stand
                        // behind helps no quorum and muddies the tally).
                        self.lock = Some(v);
                        if let Some(j) = ctx.journal() {
                            j.append(J_LOCK, &[v]);
                        }
                        self.prov_note(me, ProvRule::Lock, || {
                            (
                                format!("{v}"),
                                vec![(me.as_u32(), format!("confirm {stmt:?}"))],
                            )
                        });
                        let commit = Statement::Commit(n, v);
                        if !self.tracker.accept_would_contradict(commit) {
                            self.vote_because(ctx, commit, || {
                                vec![(me.as_u32(), format!("lock {v}"))]
                            });
                        }
                    }
                    Statement::Commit(_, v) => {
                        self.stats.commits_confirmed += 1;
                        if self.externalized.is_none() {
                            self.externalized = Some(v);
                            if let Some(j) = ctx.journal() {
                                j.append(J_EXTERNALIZE, &[v]);
                            }
                            self.prov_note(me, ProvRule::Externalize, || {
                                (
                                    format!("{v}"),
                                    vec![(me.as_u32(), format!("confirm {stmt:?}"))],
                                )
                            });
                        }
                    }
                }
            }
        }
    }
}

impl Actor<ScpMsg> for ScpNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        // Everyone known from the start receives every envelope through the
        // regular flood; only processes learned later need a catch-up.
        self.synced.clone_from(ctx.known());
        self.synced.insert(ctx.self_id());
        let input = self.config.input;
        let me = ctx.self_id();
        // The provenance DAG root: the input value entering the protocol.
        self.prov_note(me, ProvRule::Proposal, || {
            (format!("{:?}", Statement::Nominate(input)), Vec::new())
        });
        self.vote_because(ctx, Statement::Nominate(input), || {
            vec![(
                me.as_u32(),
                format!("propose {:?}", Statement::Nominate(input)),
            )]
        });
        ctx.set_timer(self.config.nomination_timeout, NOMINATION_TIMER);
        self.arm_retransmit(ctx);
        self.reevaluate(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ScpMsg>, _from: ProcessId, msg: ScpMsg) {
        // Envelopes are origin-attributed: a relay teaches us the origin's
        // identity, and any newly learned process (origin *or* sender —
        // even of an echo of our own envelopes) gets the backlog it
        // missed (straggler repair — see module docs). This must run
        // before the own-origin early return below.
        ctx.learn(msg.origin);
        self.sync_latecomers(ctx);
        self.stats.envelopes_delivered += 1;
        // Flood-style gossip with dedup; `origin` is signature-verified.
        if msg.origin == ctx.self_id() || !self.note_seen(msg.origin, msg.stmt, msg.accept) {
            self.stats.envelopes_duplicate += 1;
            return;
        }
        // A changed slice claim invalidates every statement's quorum
        // evaluation; an unchanged one (the common case — correct origins
        // always attach the same family) keeps the incremental tally
        // worklist small.
        if self.check.slices_of(msg.origin) != Some(&*msg.slices) {
            self.check.record_slices(msg.origin, &msg.slices);
            self.tracker.invalidate_all();
        }
        if msg.accept {
            self.tracker.record_accept(msg.origin, msg.stmt);
        } else {
            self.tracker.record_vote(msg.origin, msg.stmt);
        }
        // Nomination echo: before any ballot starts, adopt others'
        // nominees so a quorum of votes can form.
        if self.ballot == 0 && msg.stmt.is_nomination() && self.externalized.is_none() {
            let origin = msg.origin.as_u32();
            let (stmt, accept) = (msg.stmt, msg.accept);
            self.vote_because(ctx, stmt, || {
                let verb = if accept { "accept" } else { "vote" };
                vec![(origin, format!("{verb} {stmt:?}"))]
            });
        }
        ctx.broadcast_known(msg.clone());
        self.backlog.push(msg);
        self.reevaluate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ScpMsg>, tag: u64) {
        // Retransmission outlives externalization: peers that lost our
        // commit-accept envelopes still need them to externalize.
        if tag == RETRANSMIT_TIMER {
            self.retransmit_round(ctx);
            return;
        }
        if self.externalized.is_some() {
            return;
        }
        if tag == NOMINATION_TIMER {
            // No candidate confirmed in time: fall back to the own input so
            // ballots can start.
            if self.ballot == 0 {
                let input = self.config.input;
                let me = ctx.self_id();
                self.candidates.push(input);
                self.prov_note(me, ProvRule::Candidate, || {
                    (
                        format!("{input}"),
                        vec![(
                            me.as_u32(),
                            format!("propose {:?}", Statement::Nominate(input)),
                        )],
                    )
                });
                self.start_ballot(ctx, 1);
            }
            return;
        }
        let timer_ballot = tag >> 8;
        if timer_ballot == self.ballot {
            // The ballot stalled: bump the counter and retry with the
            // (possibly locked) value.
            let next = self.ballot + 1;
            self.start_ballot(ctx, next);
        }
    }

    /// Membership churn: a joiner gets the full envelope backlog so it can
    /// re-derive accepts/confirms from the same evidence everyone else
    /// saw. `synced.remove` first — the joiner may already be in `known`
    /// (its id was in our static participant detector while it lay
    /// dormant, so `on_start` pre-marked it synced even though every
    /// pre-join envelope to it was dropped).
    fn on_peer_joined(&mut self, ctx: &mut Context<'_, ScpMsg>, peer: ProcessId) {
        ctx.learn(peer);
        self.synced.remove(peer);
        self.sync_latecomers(ctx);
    }

    /// Crash recovery: volatile state is gone; rebuild from the config
    /// plus the durable journal, then re-announce.
    ///
    /// The journal holds exactly the node's own pledges (write-ahead in
    /// `broadcast_own`), its lock, ballot counter, candidates and
    /// externalization. Rehydrating those — and re-registering the
    /// pledges in the vote tracker — guarantees the recovered node never
    /// votes a conflicting value for a ballot it pledged before the
    /// crash (checked by [`journal_contradictions`]). Peers' envelopes
    /// were volatile and are *not* reconstructed here: they flow back in
    /// through the peers' own retransmission rounds and the flood
    /// relay, after which `reevaluate` re-derives accepts/confirms from
    /// evidence as usual.
    fn on_recover(&mut self, ctx: &mut Context<'_, ScpMsg>, journal: &dyn Journal) {
        let config = std::sync::Arc::clone(&self.config);
        let stats = self.stats;
        // The provenance log is the observer's, not the process's: it
        // survives the crash so forensic chains can span the recovery.
        let prov = std::mem::take(&mut self.prov);
        *self = ScpNode::from_shared(config);
        self.stats = stats;
        self.prov = prov;
        let me = ctx.self_id();
        // Knowledge survives in the simulator (it models the address
        // book, not process memory); peers already got our backlog.
        self.synced.clone_from(ctx.known());
        self.synced.insert(me);
        for rec in journal.records() {
            match rec.tag {
                J_PLEDGE => {
                    let [kind, n, v, accept] = rec.words[..] else {
                        continue;
                    };
                    let Some(stmt) = decode_stmt(kind, n, v) else {
                        continue;
                    };
                    let accept = accept != 0;
                    self.note_seen(me, stmt, accept);
                    self.prov_note(me, ProvRule::Replay, || (format!("{stmt:?}"), Vec::new()));
                    if accept {
                        self.tracker.record_accept(me, stmt);
                    } else {
                        self.tracker.vote(me, stmt);
                    }
                    self.backlog.push(ScpMsg {
                        origin: me,
                        slices: std::sync::Arc::clone(&self.shared_slices),
                        stmt,
                        accept,
                    });
                }
                J_LOCK => {
                    if let [v] = rec.words[..] {
                        self.lock = Some(v);
                    }
                }
                J_BALLOT => {
                    if let [n] = rec.words[..] {
                        self.ballot = self.ballot.max(n);
                    }
                }
                J_EXTERNALIZE => {
                    if let [v] = rec.words[..] {
                        self.externalized = Some(v);
                    }
                }
                J_CANDIDATE => {
                    if let [v] = rec.words[..] {
                        if !self.candidates.contains(&v) {
                            self.candidates.push(v);
                        }
                    }
                }
                _ => {}
            }
        }
        // Re-announce every rehydrated pledge (peers dedup via `seen`).
        let pledges: Vec<ScpMsg> = self.backlog.iter().cloned().collect();
        for msg in pledges {
            ctx.broadcast_known(msg);
        }
        // Restart the protocol clocks for the phase we crashed in.
        if self.externalized.is_none() {
            if self.ballot == 0 {
                let input = self.config.input;
                self.vote_because(ctx, Statement::Nominate(input), || {
                    vec![(
                        me.as_u32(),
                        format!("propose {:?}", Statement::Nominate(input)),
                    )]
                });
                ctx.set_timer(self.config.nomination_timeout, NOMINATION_TIMER);
            } else {
                ctx.set_timer(
                    self.config.ballot_timeout * (self.ballot + 1),
                    self.ballot << 8,
                );
            }
            self.reevaluate(ctx);
        }
        // A rejoining node restarts its re-announcement schedule from the
        // short intervals.
        self.backoff.reset();
        self.arm_retransmit(ctx);
    }

    fn fork(&self) -> Option<Box<dyn Actor<ScpMsg>>> {
        Some(Box::new(self.clone()))
    }

    /// Canonical state fingerprint. `tracker` and `backlog` are not hashed
    /// directly: the tally is the deterministic monotone fixpoint of the
    /// hashed envelope set (`seen`) and slice registry, and the backlog
    /// holds exactly the distinct envelopes of `seen` (its order only
    /// permutes future catch-up sends, which the explorer treats as a
    /// multiset anyway). The envelope set and the registry contribute
    /// through incrementally maintained XOR digests (see
    /// [`crate::fingerprint`]), so hashing a node is O(1) in its history.
    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_u64(self.config.input);
        h.write_u64(self.seen.len() as u64);
        h.write_u128(self.seen_digest);
        h.write_u64(self.check.recorded_len() as u64);
        h.write_u128(self.check.registry_digest());
        h.write_set(&self.synced);
        let mut candidates = self.candidates.clone();
        candidates.sort_unstable();
        h.write_u64(candidates.len() as u64);
        for v in candidates {
            h.write_u64(v);
        }
        h.write_u64(self.ballot);
        h.write_bool(self.lock.is_some());
        h.write_u64(self.lock.unwrap_or(0));
        h.write_bool(self.externalized.is_some());
        h.write_u64(self.externalized.unwrap_or(0));
    }

    /// A delivery is a no-op iff the envelope was already processed (this
    /// covers echoes of our own envelopes: `broadcast_own` records them in
    /// `seen`) and neither the knowledge set nor the latecomer-sync state
    /// can change. All three conditions are monotone — once absorbed,
    /// absorbed in every extension.
    fn absorbs(
        &self,
        self_id: ProcessId,
        known: &ProcessSet,
        _from: ProcessId,
        msg: &ScpMsg,
    ) -> bool {
        (msg.origin == self_id || known.contains(msg.origin))
            && known.difference_len(&self.synced) == 0
            && self.seen.contains(&(msg.origin, msg.stmt, msg.accept))
    }

    /// [`Actor::fingerprint`] under a process-id renaming. The incremental
    /// XOR digests pay off twice here: renamed digests are recomputed by
    /// renaming each entry and XOR-folding — no re-sorting pass, since XOR
    /// is order-independent.
    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        h.write_u64(self.config.input);
        h.write_u64(self.seen.len() as u64);
        let seen_digest = self.seen.iter().fold(0u128, |acc, (origin, stmt, accept)| {
            acc ^ seen_entry_digest(perm.apply(*origin), stmt, *accept)
        });
        h.write_u128(seen_digest);
        h.write_u64(self.check.recorded_len() as u64);
        h.write_u128(self.check.registry_digest_perm(perm));
        h.write_set(&perm.apply_set(&self.synced));
        let mut candidates = self.candidates.clone();
        candidates.sort_unstable();
        h.write_u64(candidates.len() as u64);
        for v in candidates {
            h.write_u64(v);
        }
        h.write_u64(self.ballot);
        h.write_bool(self.lock.is_some());
        h.write_u64(self.lock.unwrap_or(0));
        h.write_bool(self.externalized.is_some());
        h.write_u64(self.externalized.unwrap_or(0));
    }

    /// A delivery is *threshold-inert* (commutes with every sibling
    /// delivery to this node, in both orders, with identical emissions —
    /// the independence hook behind the sleep-set and persistent-set
    /// reductions) when the statement's tally entry it would extend can
    /// no longer be read by any threshold rule:
    ///
    /// - a **vote** for a statement already **accepted** here: the accept
    ///   rule is done with the statement and confirm reads only the
    ///   accepted set — recording the vote can never tip a threshold;
    /// - any pledge for a statement already **confirmed** here: both
    ///   accept and confirm are crossed, the level is final, and neither
    ///   tally set is consulted again;
    /// - an **accept**-level `Commit` pledge once this node has
    ///   **externalized**: the only rule that reads the Commit accepted
    ///   tally is confirm-commit, whose sole effect is externalization —
    ///   write-once and already written. Recording the accept can tip
    ///   that threshold, but tipping it is a no-op (`externalize()`
    ///   keeps the first value), so the tally is dead even though its
    ///   level may still formally rise;
    ///
    /// in both cases additionally requiring that the origin's identity
    /// and slice claim are already on file:
    ///
    /// - the slice registry is unchanged (claim equal to the recorded
    ///   one), so no other statement's quorum evaluation shifts;
    /// - the origin is known and latecomer sync is complete, so no
    ///   knowledge or catch-up side effects fire;
    /// - the nomination echo is subsumed: level ≥ accepted ⇒ ≥ voted, so
    ///   the echo's `vote()` is a no-op;
    /// - what remains is dedup/backlog bookkeeping (commutative set
    ///   inserts) plus the relay broadcast, whose emissions do not depend
    ///   on which same-recipient sibling fired first.
    ///
    /// Every condition is monotone (levels only rise, knowledge only
    /// grows, correct origins never change their claim — the checker
    /// additionally restricts the hook to correct origins), so inertness
    /// persists along every extension, as both reductions require.
    fn threshold_inert(
        &self,
        self_id: ProcessId,
        known: &ProcessSet,
        _from: ProcessId,
        msg: &ScpMsg,
    ) -> bool {
        if msg.origin == self_id
            || !known.contains(msg.origin)
            || known.difference_len(&self.synced) != 0
        {
            return false;
        }
        // A vote echo is dead once the statement is accepted; an accept
        // pledge is dead only at confirmed — except a commit accept after
        // externalization, whose confirm quorum can no longer matter.
        let level = self.tracker.level(msg.stmt);
        let tally_dead = level == VoteLevel::Confirmed
            || (level >= VoteLevel::Accepted
                && (!msg.accept
                    || (matches!(msg.stmt, Statement::Commit(..)) && self.externalized.is_some())));
        tally_dead && self.check.slices_of(msg.origin) == Some(&*msg.slices)
    }
}

/// Ballot counters above this are ignored by the equivocator (bounded
/// noise keeps runs — and explored state spaces — finite).
const EQUIVOCATION_NOISE_CAP: u64 = 4;

/// A Byzantine SCP node that equivocates: it sends conflicting nomination
/// votes and conflicting ballot pledges to different peers, each carrying
/// forged slices claiming whatever quorum suits the lie.
#[derive(Clone)]
pub struct EquivocatingScpNode {
    /// The two values it plays against each other.
    pub values: (Value, Value),
    /// The slice family it attaches (typically a forged, tiny one);
    /// shared by every outgoing envelope.
    pub fake_slices: std::sync::Arc<SliceFamily>,
    /// Rotation of the victim split: peer `idx` gets the first value when
    /// `(idx + split)` is even. The bounded model checker enumerates
    /// splits as adversary choice points; sampled runs keep the default 0.
    split: usize,
}

impl EquivocatingScpNode {
    /// Creates the adversary.
    pub fn new(values: (Value, Value), fake_slices: SliceFamily) -> Self {
        EquivocatingScpNode {
            values,
            fake_slices: std::sync::Arc::new(fake_slices),
            split: 0,
        }
    }

    /// Rotates which peers receive which of the two conflicting values.
    pub fn with_split(mut self, split: usize) -> Self {
        self.split = split;
        self
    }

    fn equivocate(&self, ctx: &mut Context<'_, ScpMsg>, stmts: (Statement, Statement)) {
        let known = ctx.known().clone();
        let me = ctx.self_id();
        for (idx, j) in known.iter().enumerate() {
            if j == me {
                continue;
            }
            let stmt = if (idx + self.split).is_multiple_of(2) {
                stmts.0
            } else {
                stmts.1
            };
            ctx.send(
                j,
                ScpMsg {
                    origin: me,
                    slices: std::sync::Arc::clone(&self.fake_slices),
                    stmt,
                    accept: true,
                },
            );
        }
    }
}

impl Actor<ScpMsg> for EquivocatingScpNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ScpMsg>) {
        let (a, b) = self.values;
        self.equivocate(ctx, (Statement::Nominate(a), Statement::Nominate(b)));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ScpMsg>, _from: ProcessId, msg: ScpMsg) {
        // Mirror ballot statements with conflicting values, once per
        // incoming counter (bounded noise).
        let (a, b) = self.values;
        if let Some(n) = msg.stmt.counter() {
            if n > EQUIVOCATION_NOISE_CAP {
                return; // keep the run finite
            }
            match msg.stmt {
                Statement::Prepare(..) => {
                    self.equivocate(ctx, (Statement::Prepare(n, a), Statement::Prepare(n, b)));
                }
                Statement::Commit(..) => {
                    self.equivocate(ctx, (Statement::Commit(n, a), Statement::Commit(n, b)));
                }
                Statement::Nominate(_) => {}
            }
        }
    }

    fn fork(&self) -> Option<Box<dyn Actor<ScpMsg>>> {
        Some(Box::new(self.clone()))
    }

    /// Stateless between events, but behaviourally parameterized: the
    /// configuration (values, forged slices) must distinguish differently
    /// configured adversaries in the state hash. The victim `split` is
    /// deliberately **not** fingerprinted: it equals the explorer's
    /// adversary variant, which the engine mixes into every state hash
    /// itself — leaving it out is what lets the symmetry quotient
    /// identify `(state, split)` with `(π(state), split + shift)` (see
    /// `scup-mc`'s victim-split quotient).
    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_u64(self.values.0);
        h.write_u64(self.values.1);
        hash_family(h, &self.fake_slices);
    }

    /// Nomination envelopes and out-of-cap ballot counters draw no
    /// response; the adversary is stateless, so such deliveries stay
    /// no-ops forever.
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        _from: ProcessId,
        msg: &ScpMsg,
    ) -> bool {
        match msg.stmt.counter() {
            None => true,
            Some(n) => n > EQUIVOCATION_NOISE_CAP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_fbqs::paper;
    use scup_graph::generators;
    use scup_graph::ProcessSet;
    use scup_sim::adversary::SilentActor;
    use scup_sim::{NetworkConfig, Simulation};

    /// Builds the Fig. 1 setting: paper slices, process 8 Byzantine.
    fn fig1_sim(seed: u64, byzantine: Box<dyn Actor<ScpMsg>>) -> Simulation<ScpMsg> {
        let kg = generators::fig1();
        let sys = paper::fig1_system();
        let mut sim = Simulation::new(kg, NetworkConfig::partially_synchronous(150, 10, seed));
        for i in 0..7u32 {
            let i = ProcessId::new(i);
            let config = ScpConfig::new(sys.slices(i).clone(), 10 + i.as_u32() as u64);
            sim.add_actor(Box::new(ScpNode::new(config)));
        }
        sim.add_actor(byzantine);
        sim
    }

    fn assert_scp_consensus(sim: &Simulation<ScpMsg>, correct: &[u32]) -> Value {
        let mut decided = None;
        for &i in correct {
            let node = sim.actor_as::<ScpNode>(ProcessId::new(i)).unwrap();
            let v = node.externalized().unwrap_or_else(|| {
                panic!(
                    "node {i} did not externalize (ballot {}, candidates {:?})",
                    node.ballot_counter(),
                    node.candidates()
                )
            });
            match decided {
                None => decided = Some(v),
                Some(prev) => assert_eq!(prev, v, "agreement violated at node {i}"),
            }
        }
        decided.unwrap()
    }

    fn run_to_decision(sim: &mut Simulation<ScpMsg>, correct: &[u32]) {
        let ids: Vec<ProcessId> = correct.iter().map(|&i| ProcessId::new(i)).collect();
        sim.run_while(
            |s| {
                !ids.iter().all(|&i| {
                    s.actor_as::<ScpNode>(i)
                        .is_some_and(|n| n.externalized().is_some())
                })
            },
            3_000_000,
        );
    }

    #[test]
    fn fig1_scp_reaches_consensus_with_silent_byzantine() {
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        for seed in 0..4 {
            let mut sim = fig1_sim(seed, Box::new(SilentActor::new()));
            run_to_decision(&mut sim, &correct);
            let v = assert_scp_consensus(&sim, &correct);
            assert!((10..17).contains(&v), "validity: {v} must be an input");
        }
    }

    #[test]
    fn node_stats_count_traffic_and_ballot_phases() {
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let mut sim = fig1_sim(0, Box::new(SilentActor::new()));
        run_to_decision(&mut sim, &correct);
        assert_scp_consensus(&sim, &correct);
        for &i in &correct {
            let s = *sim.actor_as::<ScpNode>(ProcessId::new(i)).unwrap().stats();
            assert!(s.envelopes_delivered > 0, "node {i}: {s:?}");
            // Flood gossip guarantees every node sees duplicates.
            assert!(s.envelopes_duplicate > 0, "node {i}: {s:?}");
            assert!(s.envelopes_duplicate <= s.envelopes_delivered);
            assert!(s.votes_sent > 0 && s.accepts_sent > 0, "node {i}: {s:?}");
            // Externalization implies the full phase ladder fired.
            assert!(s.ballots_started >= 1, "node {i}: {s:?}");
            assert!(s.nominations_confirmed >= 1, "node {i}: {s:?}");
            assert!(s.prepares_confirmed >= 1, "node {i}: {s:?}");
            assert!(s.commits_confirmed >= 1, "node {i}: {s:?}");
        }
    }

    #[test]
    fn fig1_scp_safe_under_equivocation() {
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        for seed in 0..4 {
            let adversary = EquivocatingScpNode::new(
                (666, 777),
                SliceFamily::explicit([ProcessSet::from_ids([7])]),
            );
            let mut sim = fig1_sim(seed, Box::new(adversary));
            run_to_decision(&mut sim, &correct);
            // Agreement must hold even against the equivocator; the value
            // may be one the adversary nominated (weak validity), but all
            // correct nodes agree.
            assert_scp_consensus(&sim, &correct);
        }
    }

    #[test]
    fn synchronous_run_decides() {
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let kg = generators::fig1();
        let sys = paper::fig1_system();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, 42));
        for i in 0..7u32 {
            let i = ProcessId::new(i);
            sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(
                sys.slices(i).clone(),
                20,
            ))));
        }
        sim.add_actor(Box::new(SilentActor::new()));
        run_to_decision(&mut sim, &correct);
        // All inputs equal: strong validity — the decision must be 20.
        assert_eq!(assert_scp_consensus(&sim, &correct), 20);
    }

    #[test]
    fn lossy_network_with_retransmission_still_decides() {
        use scup_sim::{FaultPlan, LossFault, RetransmitConfig};
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let kg = generators::fig1();
        let sys = paper::fig1_system();
        for seed in 0..3 {
            let mut sim = Simulation::new(
                kg.clone(),
                NetworkConfig::partially_synchronous(150, 10, seed),
            );
            let heal = 2_000;
            sim.set_fault_plan(FaultPlan {
                loss: Some(LossFault {
                    prob: 0.4,
                    until: heal,
                    links: None,
                }),
                ..FaultPlan::default()
            });
            for i in 0..7u32 {
                let i = ProcessId::new(i);
                let mut config = ScpConfig::new(sys.slices(i).clone(), 10 + i.as_u32() as u64);
                config.retransmit = RetransmitConfig::covering(heal, 10);
                sim.add_actor(Box::new(ScpNode::new(config)));
            }
            sim.add_actor(Box::new(SilentActor::new()));
            run_to_decision(&mut sim, &correct);
            let report = sim.report().clone();
            assert!(report.messages_dropped > 0, "seed {seed}: loss must bite");
            let v = assert_scp_consensus(&sim, &correct);
            assert!((10..17).contains(&v));
            let retransmitted: u64 = correct
                .iter()
                .map(|&i| {
                    sim.actor_as::<ScpNode>(ProcessId::new(i))
                        .unwrap()
                        .stats()
                        .retransmissions
                })
                .sum();
            assert!(retransmitted > 0, "seed {seed}: retransmission must fire");
        }
    }

    #[test]
    fn crashed_node_recovers_rejoins_and_never_contradicts_pledges() {
        use scup_sim::{CrashFault, FaultPlan, RetransmitConfig};
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let kg = generators::fig1();
        let sys = paper::fig1_system();
        for seed in 0..3 {
            let mut sim = Simulation::new(
                kg.clone(),
                NetworkConfig::partially_synchronous(150, 10, seed),
            );
            let recover_at = 1_500;
            sim.set_fault_plan(FaultPlan {
                crashes: vec![CrashFault {
                    process: ProcessId::new(2),
                    at: 300,
                    recover_at: Some(recover_at),
                }],
                ..FaultPlan::default()
            });
            for i in 0..7u32 {
                let i = ProcessId::new(i);
                let mut config = ScpConfig::new(sys.slices(i).clone(), 10 + i.as_u32() as u64);
                config.retransmit = RetransmitConfig::covering(recover_at, 10);
                sim.add_actor(Box::new(ScpNode::new(config)));
            }
            sim.add_actor(Box::new(SilentActor::new()));
            run_to_decision(&mut sim, &correct);
            let report = sim.report().clone();
            assert_eq!(report.crashes, 1);
            assert_eq!(report.recoveries, 1);
            // The recovered node rejoins and externalizes the agreed value.
            let v = assert_scp_consensus(&sim, &correct);
            assert!((10..17).contains(&v));
            // And no process — the recovered one included — contradicted
            // its durable pledges.
            for &i in &correct {
                let violations = journal_contradictions(sim.journal(ProcessId::new(i)));
                assert!(
                    violations.is_empty(),
                    "seed {seed}, node {i}: {violations:?}"
                );
                assert!(
                    !sim.journal(ProcessId::new(i)).is_empty(),
                    "node {i} journalled nothing"
                );
            }
        }
    }

    #[test]
    fn late_joiner_catches_up_via_backlog_replay() {
        use scup_sim::{ChurnPlan, JoinEvent};
        let kg = generators::fig1();
        let sys = paper::fig1_system();
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let joiner = ProcessId::new(5);
        let introduce_to: ProcessSet = kg
            .processes()
            .filter(|&i| kg.pd(i).contains(joiner))
            .collect();
        for seed in 0..3 {
            let mut sim = Simulation::new(
                kg.clone(),
                NetworkConfig::partially_synchronous(150, 10, seed),
            );
            sim.set_churn_plan(ChurnPlan {
                joins: vec![JoinEvent {
                    process: joiner,
                    at: 20_000,
                    contacts: kg.pd(joiner).clone(),
                    introduce_to: introduce_to.clone(),
                }],
                leaves: Vec::new(),
            });
            for i in 0..7u32 {
                let i = ProcessId::new(i);
                let config = ScpConfig::new(sys.slices(i).clone(), 10 + i.as_u32() as u64);
                sim.add_actor(Box::new(ScpNode::new(config)));
            }
            sim.add_actor(Box::new(SilentActor::new()));
            run_to_decision(&mut sim, &correct);
            let report = sim.report().clone();
            assert_eq!(report.joins, 1, "seed {seed}");
            assert!(
                report.churn_drops > 0,
                "seed {seed}: pre-join envelopes must die against the dormant joiner"
            );
            // The joiner externalizes the same value as the incumbents,
            // fed by the incumbents' backlog replay on introduction.
            let v = assert_scp_consensus(&sim, &correct);
            assert!((10..17).contains(&v), "seed {seed}: decided {v}");
            let catchup: u64 = correct
                .iter()
                .map(|&i| {
                    sim.actor_as::<ScpNode>(ProcessId::new(i))
                        .unwrap()
                        .stats()
                        .catchup_envelopes
                })
                .sum();
            assert!(catchup > 0, "seed {seed}: backlog replay must fire");
        }
    }

    #[test]
    fn equivocation_pairs_name_the_origin_not_the_relays() {
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let adversary = EquivocatingScpNode::new(
            (666, 777),
            SliceFamily::explicit([ProcessSet::from_ids([7])]),
        );
        let mut sim = fig1_sim(0, Box::new(adversary));
        sim.enable_causal();
        run_to_decision(&mut sim, &correct);
        assert_scp_consensus(&sim, &correct);
        let pairs = sim.causal().equivocations();
        assert!(
            !pairs.is_empty(),
            "split ballot pledges must book an equivocation pair"
        );
        // Correct nodes flood-relay both halves of the adversary's split
        // verbatim; attribution must stick to the origin regardless.
        for pair in pairs {
            assert_eq!(pair.process, 7, "relay falsely booked: {pair:?}");
        }
    }

    #[test]
    fn provenance_chains_root_at_proposals_and_supports_revalidate() {
        use scup_obs::causal::{walk_to_roots, ProvRule, ProvenanceLog};
        let correct = [0u32, 1, 2, 3, 4, 5, 6];
        let sys = paper::fig1_system();
        let mut sim = fig1_sim(0, Box::new(SilentActor::new()));
        for &i in &correct {
            sim.actor_as_mut::<ScpNode>(ProcessId::new(i))
                .unwrap()
                .enable_provenance();
        }
        run_to_decision(&mut sim, &correct);
        let v = assert_scp_consensus(&sim, &correct);
        let logs: Vec<ProvenanceLog> = (0..8u32)
            .map(|i| {
                sim.actor_as::<ScpNode>(ProcessId::new(i))
                    .map(|n| n.provenance().clone())
                    .unwrap_or_else(ProvenanceLog::disabled)
            })
            .collect();
        for &i in &correct {
            // Every externalization walks back to initial proposals
            // across process boundaries.
            let walk = walk_to_roots(&logs, i, &format!("externalize {v}"));
            assert!(walk.rooted, "node {i}: unresolved {:?}", walk.unresolved);
            assert!(
                walk.visited.iter().any(|&(p, idx)| {
                    logs[p as usize].entries()[idx].rule == ProvRule::Proposal
                }),
                "node {i}: no proposal in the walk"
            );
            // Soundness: every recorded justification re-validates against
            // the real slice system — quorum supports are quorums through
            // the pledger, v-blocking supports are v-blocking for it.
            let mut check = QuorumCheck::new();
            for p in sys.processes() {
                check.record_slices(p, sys.slices(p));
            }
            for e in logs[i as usize].entries() {
                let me = ProcessId::new(e.process);
                let support = ProcessSet::from_ids(e.support.iter().copied());
                match e.rule {
                    ProvRule::AcceptQuorum | ProvRule::Confirm => {
                        assert!(
                            check.has_quorum_through(me, sys.slices(me), &support),
                            "node {i}: support of {:?} is no quorum: {support:?}",
                            e.statement
                        );
                    }
                    ProvRule::AcceptVBlocking => {
                        assert!(
                            sys.slices(me).is_v_blocked_by(&support),
                            "node {i}: support of {:?} not v-blocking: {support:?}",
                            e.statement
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn split_quorums_can_externalize_differently() {
        // Theorem 2 as a protocol run: Fig. 2 with locally defined slices
        // (all subsets of PD_i of size |PD_i| - 1). The sink {0,1,2,3} and
        // the outer ring {4,5,6} form disjoint quorums; with inputs far
        // apart, some schedules externalize different values in the two
        // quorums — SCP loses agreement, exactly the paper's point.
        let kg = generators::fig2();
        let mut disagreements = 0;
        let mut decided_runs = 0;
        for seed in 0..12 {
            let mut sim = Simulation::new(
                kg.clone(),
                NetworkConfig::partially_synchronous(80, 10, seed),
            );
            for i in kg.processes() {
                let pd = kg.pd(i).clone();
                let size = pd.len() - 1;
                let slices = SliceFamily::all_subsets(pd, size);
                // Sink processes propose small values, outer ones large.
                let input = if i.as_u32() < 4 {
                    1
                } else {
                    100 + i.as_u32() as u64
                };
                sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(slices, input))));
            }
            sim.run_while(
                |s| {
                    !kg.processes().all(|i| {
                        s.actor_as::<ScpNode>(i)
                            .is_some_and(|n| n.externalized().is_some())
                    })
                },
                2_000_000,
            );
            let sink_v = sim
                .actor_as::<ScpNode>(ProcessId::new(0))
                .unwrap()
                .externalized();
            let outer_v = sim
                .actor_as::<ScpNode>(ProcessId::new(4))
                .unwrap()
                .externalized();
            if let (Some(a), Some(b)) = (sink_v, outer_v) {
                decided_runs += 1;
                if a != b {
                    disagreements += 1;
                }
            }
        }
        assert!(decided_runs > 0, "some runs must decide");
        assert!(
            disagreements > 0,
            "disjoint quorums must disagree on some schedule ({decided_runs} decided runs)"
        );
    }
}
