//! Federated voting: the vote → accept → confirm cascade of SCP.
//!
//! A process *votes* for a statement it is willing to assert. It *accepts*
//! the statement once either
//!
//! - a quorum (through its own slices, evaluated by Algorithm 1 against the
//!   slices attached to the members' messages) has voted-or-accepted it, or
//! - a v-blocking set of its slices has accepted it (at least one correct
//!   trusted process stands behind the claim, so it is safe to join);
//!
//! and it *confirms* (acts on) the statement once a quorum has accepted it.
//!
//! [`VoteTracker`] keeps the per-statement tally; [`QuorumCheck`] holds the
//! slice registry built from received envelopes and answers the
//! quorum/v-blocking queries.

use std::collections::BTreeMap;

use scup_fbqs::{EngineScratch, QuorumEngine, SliceFamily};
use scup_graph::{ProcessId, ProcessSet};

use crate::statement::Statement;

/// How far a process has progressed on one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VoteLevel {
    /// No pledge yet.
    None,
    /// Voted for the statement.
    Voted,
    /// Accepted the statement.
    Accepted,
    /// Confirmed the statement (quorum of accepts).
    Confirmed,
}

/// The slice registry: the latest slice family each process attached to a
/// message, compiled into a [`QuorumEngine`] so Algorithm 1 runs on packed
/// bitmask rows with reusable scratch — the per-message federated-voting
/// re-evaluation is the simulator's hottest loop.
///
/// The engine, scratch and closure buffers are *derived* state: `Clone`
/// copies only the registry and rebuilds the engine lazily on the next
/// query. Exploration forks one `QuorumCheck` per SCP node per visited
/// state, and most forked nodes are never queried before the next fork.
#[derive(Debug, Default)]
pub struct QuorumCheck {
    slices: BTreeMap<ProcessId, SliceFamily>,
    engine: Option<QuorumEngine>,
    scratch: EngineScratch,
    closure: ProcessSet,
    /// The `(self_id, own_slices)` pair currently compiled into the engine.
    own_row: Option<(ProcessId, SliceFamily)>,
}

impl Clone for QuorumCheck {
    fn clone(&self) -> Self {
        QuorumCheck {
            slices: self.slices.clone(),
            engine: None,
            scratch: EngineScratch::default(),
            closure: ProcessSet::new(),
            own_row: self.own_row.clone(),
        }
    }
}

impl QuorumCheck {
    /// Creates an empty registry.
    pub fn new() -> Self {
        QuorumCheck::default()
    }

    /// The compiled engine, rebuilt from the registry when a fork dropped
    /// it (recorded claims first, then the own-slices override on top).
    fn engine_mut(&mut self) -> &mut QuorumEngine {
        if self.engine.is_none() {
            let mut engine = QuorumEngine::new(0);
            for (i, fam) in &self.slices {
                engine.set_slices(*i, fam);
            }
            if let Some((own, fam)) = &self.own_row {
                engine.set_slices(*own, fam);
            }
            self.engine = Some(engine);
        }
        self.engine.as_mut().expect("just built")
    }

    /// Records the slice family attached to a message from `from`
    /// (overwriting earlier ones — a Byzantine equivocator is pinned to its
    /// most recent claim). Recompiles the process's engine row, and clones
    /// the family into the registry, only when the claim actually changed.
    pub fn record_slices(&mut self, from: ProcessId, slices: &SliceFamily) {
        if let Some((own, _)) = &self.own_row {
            if *own == from {
                // A recorded claim for our own id would fight the own-slices
                // override; force re-compilation on the next quorum query.
                self.own_row = None;
                if let Some(engine) = &mut self.engine {
                    engine.set_slices(from, slices);
                }
                self.slices.insert(from, slices.clone());
                return;
            }
        }
        if self.slices.get(&from) == Some(slices) {
            return;
        }
        if let Some(engine) = &mut self.engine {
            engine.set_slices(from, slices);
        }
        self.slices.insert(from, slices.clone());
    }

    /// The registered slices of `from`, if any message arrived yet.
    pub fn slices_of(&self, from: ProcessId) -> Option<&SliceFamily> {
        self.slices.get(&from)
    }

    /// Every recorded `(process, slices)` claim, in process-id order —
    /// canonical iteration for exploration state fingerprints.
    pub fn recorded(&self) -> impl Iterator<Item = (ProcessId, &SliceFamily)> + '_ {
        self.slices.iter().map(|(i, fam)| (*i, fam))
    }

    /// Returns `true` if `candidates` contains a quorum that includes
    /// `self_id` — the quorum side of the accept/confirm rules.
    ///
    /// Computes the quorum closure of `candidates` on the compiled engine
    /// (processes with unknown slices cannot certify and are dropped), then
    /// checks membership of `self_id`. Exactly Algorithm 1 applied to the
    /// largest plausible quorum, without the per-call set clones and
    /// full-rescan rounds of the pre-engine implementation.
    pub fn has_quorum_through(
        &mut self,
        self_id: ProcessId,
        own_slices: &SliceFamily,
        candidates: &ProcessSet,
    ) -> bool {
        self.engine_mut();
        let engine = self.engine.as_mut().expect("engine_mut built it");
        match &self.own_row {
            Some((own, fam)) if *own == self_id && fam == own_slices => {}
            previous => {
                // Restore the row displaced by an earlier own-slices
                // override for a *different* self id (callers may query on
                // behalf of several processes): back to its recorded claim,
                // or to no-slices when none was ever recorded.
                if let Some((old_id, _)) = previous {
                    if *old_id != self_id {
                        match self.slices.get(old_id) {
                            Some(fam) => engine.set_slices(*old_id, fam),
                            None => engine.set_slices(*old_id, &SliceFamily::empty()),
                        }
                    }
                }
                engine.set_slices(self_id, own_slices);
                self.own_row = Some((self_id, own_slices.clone()));
            }
        }
        engine.quorum_closure_in(candidates, &mut self.scratch, &mut self.closure);
        self.closure.contains(self_id)
    }

    /// Returns `true` if `accepters` is v-blocking for `own_slices` — the
    /// blocking side of the accept rule.
    pub fn is_v_blocking(&self, own_slices: &SliceFamily, accepters: &ProcessSet) -> bool {
        own_slices.is_v_blocked_by(accepters)
    }
}

/// Per-statement federated-voting tally for one process.
#[derive(Debug, Clone, Default)]
pub struct VoteTracker {
    voted: BTreeMap<Statement, ProcessSet>,
    accepted: BTreeMap<Statement, ProcessSet>,
    mine: BTreeMap<Statement, VoteLevel>,
}

impl VoteTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        VoteTracker::default()
    }

    /// Records a remote vote.
    pub fn record_vote(&mut self, from: ProcessId, stmt: Statement) {
        self.voted.entry(stmt).or_default().insert(from);
    }

    /// Records a remote accept (an accept implies a vote).
    pub fn record_accept(&mut self, from: ProcessId, stmt: Statement) {
        self.voted.entry(stmt).or_default().insert(from);
        self.accepted.entry(stmt).or_default().insert(from);
    }

    /// Registers our own vote for `stmt` (no-op if we already pledged).
    /// Returns `true` if this is a new vote that should be broadcast.
    pub fn vote(&mut self, self_id: ProcessId, stmt: Statement) -> bool {
        let level = self.mine.entry(stmt).or_insert(VoteLevel::None);
        if *level >= VoteLevel::Voted {
            return false;
        }
        *level = VoteLevel::Voted;
        self.voted.entry(stmt).or_default().insert(self_id);
        true
    }

    /// Our level on `stmt`.
    pub fn level(&self, stmt: Statement) -> VoteLevel {
        self.mine.get(&stmt).copied().unwrap_or(VoteLevel::None)
    }

    /// All statements we confirmed.
    pub fn confirmed(&self) -> impl Iterator<Item = Statement> + '_ {
        self.mine
            .iter()
            .filter(|(_, l)| **l == VoteLevel::Confirmed)
            .map(|(s, _)| *s)
    }

    /// The processes that voted-or-accepted `stmt`.
    pub fn voters(&self, stmt: Statement) -> ProcessSet {
        self.voted.get(&stmt).cloned().unwrap_or_default()
    }

    /// The processes that accepted `stmt`.
    pub fn accepters(&self, stmt: Statement) -> ProcessSet {
        self.accepted.get(&stmt).cloned().unwrap_or_default()
    }

    /// Re-evaluates the accept/confirm rules for every known statement.
    /// Returns the statements whose level rose, with their new level —
    /// the caller broadcasts new accepts and reacts to confirmations.
    ///
    /// Takes the check mutably: quorum queries run on its compiled engine,
    /// reusing its scratch buffers across statements and calls.
    pub fn update(
        &mut self,
        self_id: ProcessId,
        own_slices: &SliceFamily,
        check: &mut QuorumCheck,
    ) -> Vec<(Statement, VoteLevel)> {
        let mut changes = Vec::new();
        let statements: Vec<Statement> = self
            .voted
            .keys()
            .chain(self.accepted.keys())
            .copied()
            .collect();
        let empty = ProcessSet::new();
        for stmt in statements {
            loop {
                let level = self.level(stmt);
                let next = match level {
                    VoteLevel::None | VoteLevel::Voted => {
                        let accepters = self.accepted.get(&stmt).unwrap_or(&empty);
                        let can_accept = check.is_v_blocking(own_slices, accepters)
                            || (level == VoteLevel::Voted
                                && check.has_quorum_through(
                                    self_id,
                                    own_slices,
                                    self.voted.get(&stmt).unwrap_or(&empty),
                                ));
                        if can_accept {
                            self.accepted.entry(stmt).or_default().insert(self_id);
                            self.voted.entry(stmt).or_default().insert(self_id);
                            self.mine.insert(stmt, VoteLevel::Accepted);
                            changes.push((stmt, VoteLevel::Accepted));
                            true
                        } else {
                            false
                        }
                    }
                    VoteLevel::Accepted => {
                        if check.has_quorum_through(
                            self_id,
                            own_slices,
                            self.accepted.get(&stmt).unwrap_or(&empty),
                        ) {
                            self.mine.insert(stmt, VoteLevel::Confirmed);
                            changes.push((stmt, VoteLevel::Confirmed));
                            true
                        } else {
                            false
                        }
                    }
                    VoteLevel::Confirmed => false,
                };
                if !next {
                    break;
                }
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_fbqs::paper;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Registry loaded with the paper's Fig. 1 slices (Section III-D).
    fn fig1_check() -> QuorumCheck {
        let sys = paper::fig1_system();
        let mut check = QuorumCheck::new();
        for i in sys.processes() {
            check.record_slices(i, sys.slices(i));
        }
        check
    }

    #[test]
    fn quorum_through_sink_core() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        // {4,5,6} is a quorum for each of its members.
        let q = ProcessSet::from_ids([4, 5, 6]);
        for i in [4u32, 5, 6] {
            assert!(check.has_quorum_through(p(i), sys.slices(p(i)), &q));
        }
        // ...but not for process 0, which is outside.
        assert!(!check.has_quorum_through(p(0), sys.slices(p(0)), &q));
        // {4,5} contains no quorum.
        assert!(!check.has_quorum_through(p(4), sys.slices(p(4)), &ProcessSet::from_ids([4, 5])));
    }

    #[test]
    fn unknown_slices_cannot_certify() {
        let mut check = QuorumCheck::new();
        let sys = paper::fig1_system();
        // Only process 4's slices are known: closure drops 5 and 6.
        check.record_slices(p(4), sys.slices(p(4)));
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(!check.has_quorum_through(p(4), sys.slices(p(4)), &q));
    }

    #[test]
    fn accept_via_quorum_of_votes() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Nominate(9);
        assert!(tracker.vote(p(4), stmt));
        assert!(!tracker.vote(p(4), stmt), "idempotent");
        tracker.record_vote(p(5), stmt);
        tracker.record_vote(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(changes.contains(&(stmt, VoteLevel::Accepted)));
        assert_eq!(tracker.level(stmt), VoteLevel::Accepted);
    }

    #[test]
    fn accept_via_v_blocking_without_vote() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Nominate(3);
        // Process 4 (paper 5, slices {{5,6}} 0-based): {5} alone is
        // v-blocking... S5 = {{6,7}} paper → 0-based {5,6}: need both? A
        // single slice family is blocked by any set hitting the slice.
        tracker.record_accept(p(5), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(
            changes.contains(&(stmt, VoteLevel::Accepted)),
            "v-blocking accept without own vote"
        );
    }

    #[test]
    fn confirm_needs_quorum_of_accepts() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Prepare(1, 2);
        tracker.vote(p(4), stmt);
        tracker.record_accept(p(5), stmt);
        tracker.record_accept(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        // Accept via v-blocking {5,6}, then confirm via quorum {4,5,6} of
        // accepts, in one cascade.
        assert!(changes.contains(&(stmt, VoteLevel::Accepted)));
        assert!(changes.contains(&(stmt, VoteLevel::Confirmed)));
        assert_eq!(tracker.level(stmt), VoteLevel::Confirmed);
        assert_eq!(tracker.confirmed().collect::<Vec<_>>(), vec![stmt]);
    }

    #[test]
    fn votes_alone_do_not_confirm() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Commit(1, 2);
        tracker.vote(p(4), stmt);
        tracker.record_vote(p(5), stmt);
        tracker.record_vote(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        // Quorum of votes → accept; but confirms need a quorum of accepts,
        // and only we accepted.
        assert_eq!(changes, vec![(stmt, VoteLevel::Accepted)]);
    }

    #[test]
    fn byzantine_slice_equivocation_pins_latest() {
        let mut check = QuorumCheck::new();
        let a = SliceFamily::explicit([ProcessSet::from_ids([1])]);
        let b = SliceFamily::explicit([ProcessSet::from_ids([2])]);
        check.record_slices(p(9), &a);
        check.record_slices(p(9), &b);
        assert_eq!(check.slices_of(p(9)), Some(&b));
    }
}
