//! Federated voting: the vote → accept → confirm cascade of SCP.
//!
//! A process *votes* for a statement it is willing to assert. It *accepts*
//! the statement once either
//!
//! - a quorum (through its own slices, evaluated by Algorithm 1 against the
//!   slices attached to the members' messages) has voted-or-accepted it, or
//! - a v-blocking set of its slices has accepted it (at least one correct
//!   trusted process stands behind the claim, so it is safe to join);
//!
//! and it *confirms* (acts on) the statement once a quorum has accepted it.
//!
//! Accepts ratchet: a process never accepts a statement contradicting one
//! it already accepted ([`Statement::contradicts`]) — a v-blocking set may
//! override a process's plain *votes*, never its accepts. The ratchet is
//! what turns quorum intersection into agreement: two confirmed commits
//! of different values would require a correct process in the quorum
//! intersection to have accepted both. (Blocked statements stay blocked —
//! accepts only grow — so the incremental dirty-tracking below remains
//! sound.)
//!
//! [`VoteTracker`] keeps the per-statement tally; [`QuorumCheck`] holds the
//! slice registry built from received envelopes and answers the
//! quorum/v-blocking queries.

use std::sync::Arc;

use scup_fbqs::{EngineScratch, QuorumEngine, SliceFamily};
use scup_graph::{PersistentMap, ProcessId, ProcessSet};
use scup_obs::causal::{ProvEntry, ProvRule, ProvenanceLog};

use crate::statement::Statement;

/// How far a process has progressed on one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VoteLevel {
    /// No pledge yet.
    None,
    /// Voted for the statement.
    Voted,
    /// Accepted the statement.
    Accepted,
    /// Confirmed the statement (quorum of accepts).
    Confirmed,
}

/// The slice registry: the latest slice family each process attached to a
/// message, compiled into a [`QuorumEngine`] so Algorithm 1 runs on packed
/// bitmask rows with reusable scratch — the per-message federated-voting
/// re-evaluation is the simulator's hottest loop.
///
/// Exploration forks one `QuorumCheck` per SCP node per visited state, and
/// most forked nodes are never mutated before the next fork, so every
/// heavy field is structurally shared: the registry is a
/// [`PersistentMap`] (clone = `Arc` bump, mutation path-copies one chunk)
/// and the compiled engine rides behind an `Arc` — a fork keeps querying
/// the shared compilation and only [`Arc::make_mut`]-copies it when a
/// divergent slice claim actually arrives. Scratch and closure buffers are
/// cheap transients and start empty in each clone.
#[derive(Debug, Default)]
pub struct QuorumCheck {
    slices: PersistentMap<ProcessId, SliceFamily>,
    engine: Option<Arc<QuorumEngine>>,
    scratch: EngineScratch,
    closure: ProcessSet,
    /// The `(self_id, own_slices)` pair currently compiled into the engine.
    own_row: Option<(ProcessId, Arc<SliceFamily>)>,
    /// XOR multiset digest of the registry, maintained incrementally so
    /// state fingerprints need not re-walk the recorded claims (see
    /// [`crate::fingerprint`]).
    digest: u128,
}

impl Clone for QuorumCheck {
    fn clone(&self) -> Self {
        QuorumCheck {
            slices: self.slices.clone(),
            engine: self.engine.clone(),
            scratch: EngineScratch::default(),
            closure: ProcessSet::new(),
            own_row: self.own_row.clone(),
            digest: self.digest,
        }
    }
}

impl QuorumCheck {
    /// Creates an empty registry.
    pub fn new() -> Self {
        QuorumCheck::default()
    }

    /// Ensures the compiled engine exists (recorded claims first, then the
    /// own-slices override on top). Read-only queries then run on the
    /// possibly-shared compilation; only row rewrites go through
    /// [`Arc::make_mut`].
    fn ensure_engine(&mut self) {
        if self.engine.is_none() {
            let mut engine = QuorumEngine::new(0);
            for (i, fam) in self.slices.iter() {
                engine.set_slices(*i, fam);
            }
            if let Some((own, fam)) = &self.own_row {
                engine.set_slices(*own, fam);
            }
            self.engine = Some(Arc::new(engine));
        }
    }

    /// Records the slice family attached to a message from `from`
    /// (overwriting earlier ones — a Byzantine equivocator is pinned to its
    /// most recent claim). Recompiles the process's engine row, and clones
    /// the family into the registry, only when the claim actually changed.
    pub fn record_slices(&mut self, from: ProcessId, slices: &SliceFamily) {
        if let Some((own, _)) = &self.own_row {
            if *own == from {
                // A recorded claim for our own id would fight the own-slices
                // override; force re-compilation on the next quorum query.
                self.own_row = None;
                if let Some(engine) = &mut self.engine {
                    Arc::make_mut(engine).set_slices(from, slices);
                }
                self.record_digested(from, slices);
                return;
            }
        }
        if self.slices.get(&from) == Some(slices) {
            return;
        }
        if let Some(engine) = &mut self.engine {
            Arc::make_mut(engine).set_slices(from, slices);
        }
        self.record_digested(from, slices);
    }

    /// Stores the claim, XORing the displaced entry out of the registry
    /// digest and the new one in.
    fn record_digested(&mut self, from: ProcessId, slices: &SliceFamily) {
        if let Some(old) = self.slices.get(&from) {
            if old == slices {
                return;
            }
            self.digest ^= crate::fingerprint::family_entry_digest(from, old);
        }
        self.digest ^= crate::fingerprint::family_entry_digest(from, slices);
        self.slices.insert(from, slices.clone());
    }

    /// Number of recorded claims.
    pub fn recorded_len(&self) -> usize {
        self.slices.len()
    }

    /// The incremental XOR digest over every recorded `(process, slices)`
    /// claim — the O(1) fingerprint contribution of the registry.
    pub fn registry_digest(&self) -> u128 {
        self.digest
    }

    /// [`QuorumCheck::registry_digest`] of the registry with every process
    /// id renamed through `perm` — the symmetry reduction's slow path,
    /// recomputed per permutation (XOR needs no re-sorting).
    pub fn registry_digest_perm(&self, perm: &scup_sim::Perm) -> u128 {
        self.slices.iter().fold(0u128, |acc, (i, fam)| {
            acc ^ crate::fingerprint::family_entry_digest_perm(*i, fam, perm)
        })
    }

    /// The registered slices of `from`, if any message arrived yet.
    pub fn slices_of(&self, from: ProcessId) -> Option<&SliceFamily> {
        self.slices.get(&from)
    }

    /// Every recorded `(process, slices)` claim, in process-id order —
    /// canonical iteration for exploration state fingerprints (identical
    /// to the pre-persistent-map `BTreeMap` order).
    pub fn recorded(&self) -> impl Iterator<Item = (ProcessId, &SliceFamily)> + '_ {
        self.slices.iter().map(|(i, fam)| (*i, fam))
    }

    /// Returns `true` if `candidates` contains a quorum that includes
    /// `self_id` — the quorum side of the accept/confirm rules.
    ///
    /// Computes the quorum closure of `candidates` on the compiled engine
    /// (processes with unknown slices cannot certify and are dropped), then
    /// checks membership of `self_id`. Exactly Algorithm 1 applied to the
    /// largest plausible quorum, without the per-call set clones and
    /// full-rescan rounds of the pre-engine implementation.
    pub fn has_quorum_through(
        &mut self,
        self_id: ProcessId,
        own_slices: &SliceFamily,
        candidates: &ProcessSet,
    ) -> bool {
        self.ensure_engine();
        let row_current = matches!(
            &self.own_row,
            Some((own, fam)) if *own == self_id && **fam == *own_slices
        );
        if !row_current {
            // Restore the row displaced by an earlier own-slices override
            // for a *different* self id (callers may query on behalf of
            // several processes): back to its recorded claim, or to
            // no-slices when none was ever recorded. Row rewrites are the
            // only place a fork-shared engine compilation gets copied.
            let previous = self.own_row.take();
            let engine = Arc::make_mut(self.engine.as_mut().expect("ensured above"));
            if let Some((old_id, _)) = &previous {
                if *old_id != self_id {
                    match self.slices.get(old_id) {
                        Some(fam) => engine.set_slices(*old_id, fam),
                        None => engine.set_slices(*old_id, &SliceFamily::empty()),
                    }
                }
            }
            engine.set_slices(self_id, own_slices);
            self.own_row = Some((self_id, Arc::new(own_slices.clone())));
        }
        let engine = self.engine.as_ref().expect("ensured above");
        engine.quorum_closure_in(candidates, &mut self.scratch, &mut self.closure);
        self.closure.contains(self_id)
    }

    /// Returns `true` if `accepters` is v-blocking for `own_slices` — the
    /// blocking side of the accept rule.
    pub fn is_v_blocking(&self, own_slices: &SliceFamily, accepters: &ProcessSet) -> bool {
        own_slices.is_v_blocked_by(accepters)
    }

    /// The quorum closure computed by the most recent
    /// [`QuorumCheck::has_quorum_through`] call. Valid only immediately
    /// after a call that returned `true`, in which case this *is* the
    /// justifying quorum (it contains `self_id` and every member is
    /// certified through the registered slices).
    pub fn last_closure(&self) -> &ProcessSet {
        &self.closure
    }
}

/// Per-statement federated-voting tally for one process.
///
/// Structurally shared: exploration forks a tracker per SCP node per
/// visited state, so the per-statement maps are [`PersistentMap`]s —
/// `Clone` is three `Arc` bumps, and recording a pledge path-copies one
/// chunk instead of the whole tally.
#[derive(Debug, Default)]
pub struct VoteTracker {
    voted: PersistentMap<Statement, ProcessSet>,
    accepted: PersistentMap<Statement, ProcessSet>,
    mine: PersistentMap<Statement, VoteLevel>,
    /// Statements whose tally changed since the last [`VoteTracker::update`]
    /// — the incremental worklist. A statement's level depends only on its
    /// own tally sets, the caller's slices, and the slice registry, so
    /// re-evaluating anything else is wasted quorum queries (the previous
    /// full-rescan `update` dominated the exploration profile).
    dirty: Vec<Statement>,
    /// Set when the slice registry changed: every statement's quorum
    /// evaluation is stale, so the next update rescans all of them.
    all_dirty: bool,
    /// Reusable statement buffer for [`VoteTracker::update`] (transient:
    /// clones start with a fresh one).
    stmt_buf: Vec<Statement>,
}

impl Clone for VoteTracker {
    fn clone(&self) -> Self {
        VoteTracker {
            voted: self.voted.clone(),
            accepted: self.accepted.clone(),
            mine: self.mine.clone(),
            dirty: self.dirty.clone(),
            all_dirty: self.all_dirty,
            stmt_buf: Vec::new(),
        }
    }
}

impl VoteTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        VoteTracker::default()
    }

    fn mark_dirty(&mut self, stmt: Statement) {
        if !self.all_dirty && !self.dirty.contains(&stmt) {
            self.dirty.push(stmt);
        }
    }

    /// Marks every statement stale — call after the slice registry (which
    /// all quorum evaluations read) changed.
    pub fn invalidate_all(&mut self) {
        self.all_dirty = true;
        self.dirty.clear();
    }

    /// Records a remote vote.
    pub fn record_vote(&mut self, from: ProcessId, stmt: Statement) {
        if self.voted.get_or_default(stmt).insert(from) {
            self.mark_dirty(stmt);
        }
    }

    /// Records a remote accept (an accept implies a vote).
    pub fn record_accept(&mut self, from: ProcessId, stmt: Statement) {
        let fresh_vote = self.voted.get_or_default(stmt).insert(from);
        if self.accepted.get_or_default(stmt).insert(from) || fresh_vote {
            self.mark_dirty(stmt);
        }
    }

    /// Registers our own vote for `stmt` (no-op if we already pledged).
    /// Returns `true` if this is a new vote that should be broadcast.
    pub fn vote(&mut self, self_id: ProcessId, stmt: Statement) -> bool {
        if self.level(stmt) >= VoteLevel::Voted {
            return false;
        }
        self.mine.insert(stmt, VoteLevel::Voted);
        self.voted.get_or_default(stmt).insert(self_id);
        self.mark_dirty(stmt);
        true
    }

    /// Our level on `stmt`.
    pub fn level(&self, stmt: Statement) -> VoteLevel {
        self.mine.get(&stmt).copied().unwrap_or(VoteLevel::None)
    }

    /// The accept ratchet: `true` when `stmt` contradicts a statement we
    /// already accepted (or confirmed). A process's plain vote may be
    /// overridden by a v-blocking set, but its accepts are pledges it
    /// never walks back — this is what makes two confirmed commits of
    /// different values impossible whenever correct quorums intersect
    /// (see [`Statement::contradicts`]).
    pub fn accept_would_contradict(&self, stmt: Statement) -> bool {
        self.mine
            .iter()
            .any(|(s, l)| *l >= VoteLevel::Accepted && stmt.contradicts(s))
    }

    /// All statements we confirmed.
    pub fn confirmed(&self) -> impl Iterator<Item = Statement> + '_ {
        self.mine
            .iter()
            .filter(|(_, l)| **l == VoteLevel::Confirmed)
            .map(|(s, _)| *s)
    }

    /// The processes that voted-or-accepted `stmt`.
    pub fn voters(&self, stmt: Statement) -> ProcessSet {
        self.voted.get(&stmt).cloned().unwrap_or_default()
    }

    /// The processes that accepted `stmt`.
    pub fn accepters(&self, stmt: Statement) -> ProcessSet {
        self.accepted.get(&stmt).cloned().unwrap_or_default()
    }

    /// Re-evaluates the accept/confirm rules for every *stale* statement
    /// (tally changed since the last call, or all of them after a registry
    /// change). Returns the statements whose level rose, with their new
    /// level — the caller broadcasts new accepts and reacts to
    /// confirmations.
    ///
    /// Incremental: a statement's level is a monotone function of its own
    /// tally sets, the caller's slices, and the slice registry. Recording
    /// paths mark the touched statement dirty and
    /// [`VoteTracker::invalidate_all`] handles registry changes, so a
    /// statement whose inputs did not change since its last evaluation
    /// cannot have a higher level now and is safely skipped.
    ///
    /// Takes the check mutably: quorum queries run on its compiled engine,
    /// reusing its scratch buffers across statements and calls.
    pub fn update(
        &mut self,
        self_id: ProcessId,
        own_slices: &SliceFamily,
        check: &mut QuorumCheck,
    ) -> Vec<(Statement, VoteLevel)> {
        let mut prov = ProvenanceLog::disabled();
        self.update_observed(self_id, own_slices, check, &mut prov)
    }

    /// [`VoteTracker::update`] with decision provenance: when `prov` is
    /// enabled, every accept/confirm ratchet step records *which* rule
    /// fired and the justifying process set — the quorum closure for the
    /// quorum rules, the accepter set for the v-blocking rule — as a
    /// [`ProvEntry`] whose support references resolve against the other
    /// processes' logs (see [`scup_obs::causal::walk_to_roots`]).
    /// With a disabled log this is exactly `update`: no formatting, no
    /// allocation, identical quorum queries.
    pub fn update_observed(
        &mut self,
        self_id: ProcessId,
        own_slices: &SliceFamily,
        check: &mut QuorumCheck,
        prov: &mut ProvenanceLog,
    ) -> Vec<(Statement, VoteLevel)> {
        let mut changes = Vec::new();
        let mut statements = std::mem::take(&mut self.stmt_buf);
        statements.clear();
        if self.all_dirty {
            // Every accept is also recorded as a vote, so `voted`'s keys
            // cover the statement universe.
            statements.extend(self.voted.keys().copied());
            self.all_dirty = false;
            self.dirty.clear();
        } else {
            // Ascending statement order, exactly like the full rescan.
            statements.append(&mut self.dirty);
            statements.sort_unstable();
            statements.dedup();
        }
        let empty = ProcessSet::new();
        for stmt in statements.iter().copied() {
            loop {
                let level = self.level(stmt);
                let next = match level {
                    VoteLevel::None | VoteLevel::Voted => {
                        let accepters = self.accepted.get(&stmt).unwrap_or(&empty);
                        // Which accept rule fires matters only to the
                        // provenance log; the `||` order matches the old
                        // short-circuit exactly, so the quorum query runs
                        // iff it used to.
                        let rule = if self.accept_would_contradict(stmt) {
                            None
                        } else if check.is_v_blocking(own_slices, accepters) {
                            Some(ProvRule::AcceptVBlocking)
                        } else if level == VoteLevel::Voted
                            && check.has_quorum_through(
                                self_id,
                                own_slices,
                                self.voted.get(&stmt).unwrap_or(&empty),
                            )
                        {
                            Some(ProvRule::AcceptQuorum)
                        } else {
                            None
                        };
                        if let Some(rule) = rule {
                            if prov.is_enabled() {
                                let (support, label) = match rule {
                                    ProvRule::AcceptVBlocking => (
                                        self.accepted
                                            .get(&stmt)
                                            .unwrap_or(&empty)
                                            .iter()
                                            .map(|p| p.as_u32())
                                            .collect(),
                                        format!("accept {stmt:?}"),
                                    ),
                                    _ => (
                                        check.last_closure().iter().map(|p| p.as_u32()).collect(),
                                        format!("vote {stmt:?}"),
                                    ),
                                };
                                prov.push(ProvEntry {
                                    process: self_id.as_u32(),
                                    rule,
                                    statement: format!("{stmt:?}"),
                                    premises: Vec::new(),
                                    support,
                                    support_label: Some(label),
                                });
                            }
                            self.accepted.get_or_default(stmt).insert(self_id);
                            self.voted.get_or_default(stmt).insert(self_id);
                            self.mine.insert(stmt, VoteLevel::Accepted);
                            changes.push((stmt, VoteLevel::Accepted));
                            true
                        } else {
                            false
                        }
                    }
                    VoteLevel::Accepted => {
                        if check.has_quorum_through(
                            self_id,
                            own_slices,
                            self.accepted.get(&stmt).unwrap_or(&empty),
                        ) {
                            if prov.is_enabled() {
                                prov.push(ProvEntry {
                                    process: self_id.as_u32(),
                                    rule: ProvRule::Confirm,
                                    statement: format!("{stmt:?}"),
                                    premises: Vec::new(),
                                    support: check
                                        .last_closure()
                                        .iter()
                                        .map(|p| p.as_u32())
                                        .collect(),
                                    support_label: Some(format!("accept {stmt:?}")),
                                });
                            }
                            self.mine.insert(stmt, VoteLevel::Confirmed);
                            changes.push((stmt, VoteLevel::Confirmed));
                            true
                        } else {
                            false
                        }
                    }
                    VoteLevel::Confirmed => false,
                };
                if !next {
                    break;
                }
            }
        }
        self.stmt_buf = statements;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_fbqs::paper;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Registry loaded with the paper's Fig. 1 slices (Section III-D).
    fn fig1_check() -> QuorumCheck {
        let sys = paper::fig1_system();
        let mut check = QuorumCheck::new();
        for i in sys.processes() {
            check.record_slices(i, sys.slices(i));
        }
        check
    }

    #[test]
    fn quorum_through_sink_core() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        // {4,5,6} is a quorum for each of its members.
        let q = ProcessSet::from_ids([4, 5, 6]);
        for i in [4u32, 5, 6] {
            assert!(check.has_quorum_through(p(i), sys.slices(p(i)), &q));
        }
        // ...but not for process 0, which is outside.
        assert!(!check.has_quorum_through(p(0), sys.slices(p(0)), &q));
        // {4,5} contains no quorum.
        assert!(!check.has_quorum_through(p(4), sys.slices(p(4)), &ProcessSet::from_ids([4, 5])));
    }

    #[test]
    fn unknown_slices_cannot_certify() {
        let mut check = QuorumCheck::new();
        let sys = paper::fig1_system();
        // Only process 4's slices are known: closure drops 5 and 6.
        check.record_slices(p(4), sys.slices(p(4)));
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(!check.has_quorum_through(p(4), sys.slices(p(4)), &q));
    }

    #[test]
    fn accept_via_quorum_of_votes() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Nominate(9);
        assert!(tracker.vote(p(4), stmt));
        assert!(!tracker.vote(p(4), stmt), "idempotent");
        tracker.record_vote(p(5), stmt);
        tracker.record_vote(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(changes.contains(&(stmt, VoteLevel::Accepted)));
        assert_eq!(tracker.level(stmt), VoteLevel::Accepted);
    }

    #[test]
    fn accept_via_v_blocking_without_vote() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Nominate(3);
        // Process 4 (paper 5, slices {{5,6}} 0-based): {5} alone is
        // v-blocking... S5 = {{6,7}} paper → 0-based {5,6}: need both? A
        // single slice family is blocked by any set hitting the slice.
        tracker.record_accept(p(5), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(
            changes.contains(&(stmt, VoteLevel::Accepted)),
            "v-blocking accept without own vote"
        );
    }

    #[test]
    fn confirm_needs_quorum_of_accepts() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Prepare(1, 2);
        tracker.vote(p(4), stmt);
        tracker.record_accept(p(5), stmt);
        tracker.record_accept(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        // Accept via v-blocking {5,6}, then confirm via quorum {4,5,6} of
        // accepts, in one cascade.
        assert!(changes.contains(&(stmt, VoteLevel::Accepted)));
        assert!(changes.contains(&(stmt, VoteLevel::Confirmed)));
        assert_eq!(tracker.level(stmt), VoteLevel::Confirmed);
        assert_eq!(tracker.confirmed().collect::<Vec<_>>(), vec![stmt]);
    }

    #[test]
    fn votes_alone_do_not_confirm() {
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let stmt = Statement::Commit(1, 2);
        tracker.vote(p(4), stmt);
        tracker.record_vote(p(5), stmt);
        tracker.record_vote(p(6), stmt);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        // Quorum of votes → accept; but confirms need a quorum of accepts,
        // and only we accepted.
        assert_eq!(changes, vec![(stmt, VoteLevel::Accepted)]);
    }

    #[test]
    fn accept_ratchet_blocks_contradicting_commit() {
        // Process 4 accepts commit(1, 2) through a quorum of votes; a
        // later commit of a *different* value must never reach Accepted —
        // not even through a v-blocking set of (Byzantine or confused)
        // accepters.
        let mut check = fig1_check();
        let sys = paper::fig1_system();
        let mut tracker = VoteTracker::new();
        let commit_v = Statement::Commit(1, 2);
        tracker.vote(p(4), commit_v);
        tracker.record_vote(p(5), commit_v);
        tracker.record_vote(p(6), commit_v);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(changes.contains(&(commit_v, VoteLevel::Accepted)));

        let commit_w = Statement::Commit(7, 3);
        assert!(tracker.accept_would_contradict(commit_w));
        tracker.record_accept(p(5), commit_w);
        tracker.record_accept(p(6), commit_w);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(
            !changes.iter().any(|(s, _)| *s == commit_w),
            "accepted a commit contradicting an accepted commit: {changes:?}"
        );
        assert_eq!(tracker.level(commit_w), VoteLevel::None);

        // A higher prepare of another value (aborting the accepted
        // ballot) is ratcheted out the same way...
        let prepare_w = Statement::Prepare(2, 3);
        tracker.vote(p(4), prepare_w);
        tracker.record_accept(p(5), prepare_w);
        tracker.record_accept(p(6), prepare_w);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(!changes.iter().any(|(s, _)| *s == prepare_w));
        assert_eq!(tracker.level(prepare_w), VoteLevel::Voted);

        // ...while the same value keeps flowing freely.
        let prepare_v = Statement::Prepare(2, 2);
        assert!(!tracker.accept_would_contradict(prepare_v));
        tracker.vote(p(4), prepare_v);
        tracker.record_vote(p(5), prepare_v);
        tracker.record_vote(p(6), prepare_v);
        let changes = tracker.update(p(4), sys.slices(p(4)), &mut check);
        assert!(changes.contains(&(prepare_v, VoteLevel::Accepted)));
    }

    #[test]
    fn byzantine_slice_equivocation_pins_latest() {
        let mut check = QuorumCheck::new();
        let a = SliceFamily::explicit([ProcessSet::from_ids([1])]);
        let b = SliceFamily::explicit([ProcessSet::from_ids([2])]);
        check.record_slices(p(9), &a);
        check.record_slices(p(9), &b);
        assert_eq!(check.slices_of(p(9)), Some(&b));
    }

    /// Recomputes the registry digest from scratch, the way the
    /// incremental bookkeeping must track it.
    fn digest_from_scratch(check: &QuorumCheck) -> u128 {
        check.recorded().fold(0u128, |acc, (i, fam)| {
            acc ^ crate::fingerprint::family_entry_digest(i, fam)
        })
    }

    #[test]
    fn registry_digest_tracks_inserts_and_overwrites() {
        // The state-hash-stability half of the representation swap: the
        // incrementally maintained XOR digest must equal a from-scratch
        // walk of the registry after any insert/overwrite sequence —
        // including the Byzantine re-announcement path that XORs the
        // displaced entry back out.
        let mut check = fig1_check();
        assert_eq!(check.registry_digest(), digest_from_scratch(&check));
        let a = SliceFamily::explicit([ProcessSet::from_ids([1])]);
        let b = SliceFamily::explicit([ProcessSet::from_ids([2])]);
        check.record_slices(p(9), &a);
        assert_eq!(check.registry_digest(), digest_from_scratch(&check));
        check.record_slices(p(9), &b);
        assert_eq!(check.registry_digest(), digest_from_scratch(&check));
        // Re-recording the same family is a digest no-op.
        let before = check.registry_digest();
        check.record_slices(p(9), &b);
        assert_eq!(check.registry_digest(), before);
        // Two registries with the same contents agree regardless of
        // insertion order (the digest is a function of the set).
        let mut other = QuorumCheck::new();
        let sys = paper::fig1_system();
        for i in sys.processes().collect::<Vec<_>>().into_iter().rev() {
            other.record_slices(i, sys.slices(i));
        }
        other.record_slices(p(9), &b);
        assert_eq!(other.registry_digest(), check.registry_digest());
    }

    #[test]
    fn registry_digest_under_identity_perm_is_the_digest() {
        let check = fig1_check();
        let id = scup_sim::Perm::identity(8);
        assert_eq!(check.registry_digest_perm(&id), check.registry_digest());
        // A transposition renames entries: digest changes (members moved),
        // and applying it twice round-trips.
        let swap = scup_sim::Perm::from_map(vec![1, 0, 2, 3, 4, 5, 6, 7]);
        let renamed = check.registry_digest_perm(&swap);
        assert_ne!(renamed, check.registry_digest());
    }

    #[test]
    fn forked_checks_share_then_diverge() {
        // Persistent-map + Arc-engine semantics: a clone answers queries
        // identically, and divergent slice claims after the fork do not
        // leak across.
        let mut a = fig1_check();
        let sys = paper::fig1_system();
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(a.has_quorum_through(p(4), sys.slices(p(4)), &q));
        let mut b = a.clone();
        assert!(b.has_quorum_through(p(4), sys.slices(p(4)), &q));
        // Divergence: b learns a forged claim for 5; a is unaffected.
        b.record_slices(p(5), &SliceFamily::explicit([ProcessSet::from_ids([0])]));
        assert!(a.has_quorum_through(p(4), sys.slices(p(4)), &q));
        assert_ne!(a.registry_digest(), b.registry_digest());
        assert_eq!(a.slices_of(p(5)), Some(sys.slices(p(5))));
    }
}
