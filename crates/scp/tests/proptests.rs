//! Property-based tests for SCP.
//!
//! The central safety property: on systems whose correct processes form a
//! consensus cluster, no run — across seeds, GST values, and adversary
//! placements — externalizes two different values at correct nodes.

use proptest::prelude::*;
use scup_fbqs::{paper, SliceFamily};
use scup_graph::{generators, ProcessId, ProcessSet};
use scup_scp::node::EquivocatingScpNode;
use scup_scp::{ScpConfig, ScpMsg, ScpNode};
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};

/// Algorithm 2 of the paper, inlined to avoid a dev-dependency cycle with
/// the core crate: sink members get all ⌈(|V|+f+1)/2⌉-subsets of V_sink,
/// non-sink members all (f+1)-subsets.
fn algorithm2_slices(v_sink: &ProcessSet, is_member: bool, f: usize) -> SliceFamily {
    let size = if is_member {
        (v_sink.len() + f + 1).div_ceil(2)
    } else {
        f + 1
    };
    SliceFamily::all_subsets(v_sink.clone(), size)
}

fn run_fig1(
    seed: u64,
    gst: u64,
    equivocate: bool,
    inputs: &[u64; 7],
) -> (Simulation<ScpMsg>, Vec<Option<u64>>) {
    let kg = generators::fig1();
    let sys = paper::fig1_system();
    let mut sim = Simulation::new(kg, NetworkConfig::partially_synchronous(gst, 10, seed));
    for i in 0..7u32 {
        let id = ProcessId::new(i);
        sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(
            sys.slices(id).clone(),
            inputs[i as usize],
        ))));
    }
    if equivocate {
        sim.add_actor(Box::new(EquivocatingScpNode::new(
            (1_000_001, 1_000_002),
            SliceFamily::explicit([ProcessSet::from_ids([7])]),
        )));
    } else {
        sim.add_actor(Box::new(SilentActor::new()));
    }
    sim.run_while(
        |s| {
            !(0..7u32).all(|i| {
                s.actor_as::<ScpNode>(ProcessId::new(i))
                    .is_some_and(|n| n.externalized().is_some())
            })
        },
        3_000_000,
    );
    let decisions = (0..7u32)
        .map(|i| {
            sim.actor_as::<ScpNode>(ProcessId::new(i))
                .unwrap()
                .externalized()
        })
        .collect();
    (sim, decisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scp_agreement_and_termination_on_fig1(
        seed in 0u64..100_000,
        gst in 0u64..300,
        equivocate in proptest::bool::ANY,
        base in 1u64..1000,
    ) {
        let inputs = [base, base + 1, base + 2, base + 3, base + 4, base + 5, base + 6];
        let (_, decisions) = run_fig1(seed, gst, equivocate, &inputs);
        let mut value = None;
        for (i, d) in decisions.iter().enumerate() {
            prop_assert!(d.is_some(), "node {} did not externalize", i);
            match value {
                None => value = *d,
                Some(prev) => prop_assert_eq!(Some(prev), *d, "disagreement at node {}", i),
            }
        }
        if !equivocate {
            // Validity with a silent adversary: a correct input decided.
            let v = value.unwrap();
            prop_assert!(inputs.contains(&v), "decided {} not an input", v);
        }
    }

    #[test]
    fn scp_strong_validity_on_unanimous_inputs(seed in 0u64..100_000, gst in 0u64..200) {
        let inputs = [7u64; 7];
        let (_, decisions) = run_fig1(seed, gst, false, &inputs);
        for d in &decisions {
            prop_assert_eq!(*d, Some(7));
        }
    }

    #[test]
    fn scp_with_algorithm2_slices_on_random_graphs(seed in 0u64..50_000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);
        let v_sink = scup_graph::sink::unique_sink(kg.graph()).unwrap();
        let mut sim = Simulation::new(
            kg.clone(),
            NetworkConfig::partially_synchronous(seed % 200, 10, seed),
        );
        for i in kg.processes() {
            if faulty.contains(i) {
                sim.add_actor(Box::new(SilentActor::new()));
            } else {
                let slices = algorithm2_slices(&v_sink, v_sink.contains(i), 1);
                sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(
                    slices,
                    10 + i.as_u32() as u64,
                ))));
            }
        }
        let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
        sim.run_while(
            |s| {
                !correct.iter().all(|&i| {
                    s.actor_as::<ScpNode>(i).is_some_and(|n| n.externalized().is_some())
                })
            },
            3_000_000,
        );
        let mut value = None;
        for &i in &correct {
            let d = sim.actor_as::<ScpNode>(i).unwrap().externalized();
            prop_assert!(d.is_some(), "termination at {}", i);
            match value {
                None => value = d,
                Some(prev) => prop_assert_eq!(d, Some(prev), "agreement at {}", i),
            }
        }
    }
}
