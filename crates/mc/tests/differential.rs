//! Differential soundness tests: reduced and unreduced exploration must
//! agree on every verdict, for every small system in the suite.
//!
//! Every reduction — symmetry quotient, sleep sets, eager-inert
//! (persistent-set) firing, and their combinations — must preserve the
//! verdict tuple against the fully unreduced (PR 3 semantics) baseline:
//! violation found or not, minimal counterexample depth, completeness,
//! decided values, pass/fail. None of them may *grow* the state space.
//!
//! The search discipline rides the same battery: the uniform-cost
//! (min-depth-first) frontier and the legacy label-correcting DFS are
//! two traversal orders over the *same* canonical state space, so under
//! identical reduction knobs they must produce the identical census —
//! not just the verdict — on every system. The DFS baseline anchors
//! this file; the uniform-cost runs are pinned against it combo by
//! combo (sleep sets excepted: their covers are DFS-scoped and the
//! parser rejects them under uniform cost).
//!
//! The raw state census is deliberately not required to match: symmetry
//! and eager-inert shrink it by design, and sleep sets may skip states
//! that are trace-equivalent to extensions of visited terminal states
//! (whose verdict contribution is therefore already on record — see
//! the explorer module docs).
//!
//! One scoping note: the eager-inert comparison runs on *complete*
//! (untruncated) systems only. Inert fires are free moves, so on a
//! step-truncated space the same step budget legitimately reaches
//! deeper under the reduction — the two runs then explore different
//! cuts of the space and their verdicts are incomparable by
//! construction, not unsound.

use scup_harness::scenario::{
    ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, SearchMode, TopologySpec,
};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::explore_scenario;
use scup_mc::ExploreRecord;
use stellar_cup::attempts::LocalSliceStrategy;

fn sink2(steps: u32, timer_budget: u32, adversary: &str, inputs: Vec<u64>) -> Scenario {
    Scenario::builder("sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary(adversary)
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .inputs(inputs)
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget,
            ..Default::default()
        })
        .build()
}

fn split22(steps: u32) -> Scenario {
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget: 0,
            expect_violation: true,
            ..Default::default()
        })
        .build()
}

/// The fig1-style BFT-CUP system (2-member sink, silent outsiders).
fn bftcup_sink2(steps: u32, timer_budget: u32) -> Scenario {
    Scenario::builder("bftcup-sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary("silent")
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(vec![3, 9])
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget,
            ..Default::default()
        })
        .build()
}

/// The bounded equivocating-leader BFT-CUP system (4-member clique sink,
/// f = 1, the view-0 leader lies).
fn bftcup_equiv_leader(steps: u32) -> Scenario {
    Scenario::builder("bftcup-equiv-leader")
        .topology(TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        })
        .f(1)
        .adversary("equivocate")
        .faults(FaultPlacement::Ids(vec![0]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(vec![7])
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The discovery-interleaved full-stack system: same graph as `sink2`,
/// but Algorithm 3 runs inside the explored schedule.
fn sink2_discovery(steps: u32) -> Scenario {
    let mut s = sink2(steps, 0, "silent", vec![3, 9]);
    s.explore.explore_discovery = true;
    s
}

fn explore_with(
    mut s: Scenario,
    search: SearchMode,
    symmetry: bool,
    sleep_sets: bool,
    eager: bool,
) -> ExploreRecord {
    s.explore.search = search;
    s.explore.symmetry = symmetry;
    s.explore.sleep_sets = sleep_sets;
    s.explore.eager_inert = eager;
    let r = explore_scenario(&s, 2, &AdversaryRegistry::builtin());
    assert_eq!(r.error, None, "scenario must explore cleanly");
    r
}

/// The verdict tuple every sound reduction must preserve.
fn verdict(r: &ExploreRecord) -> (bool, Option<u32>, bool, Vec<u64>, bool) {
    (
        r.violating > 0,
        r.min_violation_depth,
        r.complete,
        r.decided_values.clone(),
        r.passed,
    )
}

/// The full state census the two search disciplines must agree on under
/// identical reduction knobs: same canonical states, same minimal
/// depths, same per-state classifications. Traversal-effort counters
/// (`transitions`, re-expansions) are the *only* thing allowed to
/// differ between uniform cost and DFS.
fn census(r: &ExploreRecord) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.states,
        r.expanded,
        r.decided,
        r.quiescent_undecided,
        r.truncated,
        r.violating,
        r.symmetric_states,
    )
}

/// Strips the fields outside the bit-identical contract (wall-clock
/// time, traversal-effort counters, the obs block, opt-in forensics).
fn deterministic_view(mut r: ExploreRecord) -> ExploreRecord {
    r.wall_micros = 0;
    r.transitions = 0;
    r.sleep_prunes = 0;
    r.obs = None;
    if let Some(v) = &mut r.violation {
        v.forensics = None;
    }
    r
}

/// Every reduction combination agrees with the unreduced baseline on the
/// verdict of every *complete* (untruncated) system, and never grows the
/// space.
#[test]
// Exhausts split22's full 20 880-state unreduced space 8 ways; affordable
// in release, slow unoptimized (the explore-smoke CI job runs with
// --include-ignored).
#[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
fn reductions_agree_on_complete_systems() {
    let systems: Vec<(&str, Scenario)> = vec![
        ("sink2-silent", sink2(64, 0, "silent", vec![3, 9])),
        ("sink2-timers", sink2(96, 1, "silent", vec![7])),
        ("split22-full", split22(48)),
        // The full-stack systems: BFT-CUP (with and without view-change
        // timers) and the discovery-interleaved positive pipeline.
        ("bftcup-sink2", bftcup_sink2(64, 0)),
        ("bftcup-sink2-timers", bftcup_sink2(96, 1)),
        ("sink2-discovery", sink2_discovery(64)),
    ];
    for (name, scenario) in systems {
        let base = explore_with(scenario.clone(), SearchMode::Dfs, false, false, false);
        assert!(base.complete, "{name}: baseline must exhaust");
        for symmetry in [false, true] {
            for sleep_sets in [false, true] {
                for eager in [false, true] {
                    let r = explore_with(
                        scenario.clone(),
                        SearchMode::Dfs,
                        symmetry,
                        sleep_sets,
                        eager,
                    );
                    if (symmetry, sleep_sets, eager) != (false, false, false) {
                        assert_eq!(
                            verdict(&r),
                            verdict(&base),
                            "{name}: verdict drifted under symmetry={symmetry} \
                             sleep={sleep_sets} eager={eager}"
                        );
                        assert!(
                            r.states <= base.states,
                            "{name}: a reduction cannot grow the space"
                        );
                    }
                    // The uniform-cost frontier must reproduce the DFS
                    // census exactly under the same knobs (sleep sets
                    // are DFS-only by construction).
                    if !sleep_sets {
                        let u =
                            explore_with(scenario.clone(), SearchMode::Ucs, symmetry, false, eager);
                        assert_eq!(
                            verdict(&u),
                            verdict(&base),
                            "{name}: ucs verdict drifted under symmetry={symmetry} eager={eager}"
                        );
                        assert_eq!(
                            census(&u),
                            census(&r),
                            "{name}: ucs/dfs census drift under symmetry={symmetry} eager={eager}"
                        );
                    }
                }
            }
        }
    }
}

/// On step-truncated spaces the free-move depth metric of `eager_inert`
/// legitimately diverges, so only the metric-compatible reductions are
/// compared there.
#[test]
fn metric_compatible_reductions_agree_on_bounded_systems() {
    let systems: Vec<(&str, Scenario)> = vec![
        ("sink2-equivocate", sink2(6, 0, "equivocate", vec![7])),
        ("split22-bounded", split22(17)),
        ("sink2-crash", sink2(7, 0, "crash:3", vec![3, 9])),
        // Both BFT-CUP equivocation variants and a truncated cut of the
        // discovery-interleaved stack.
        ("bftcup-equiv-leader", bftcup_equiv_leader(4)),
        ("bftcup-crash", {
            let mut s = bftcup_sink2(7, 0);
            s.adversary = "crash:3".into();
            s
        }),
        ("sink2-discovery-bounded", sink2_discovery(12)),
    ];
    for (name, scenario) in systems {
        let base = explore_with(scenario.clone(), SearchMode::Dfs, false, false, false);
        for (symmetry, sleep_sets) in [(true, false), (false, true), (true, true)] {
            let r = explore_with(
                scenario.clone(),
                SearchMode::Dfs,
                symmetry,
                sleep_sets,
                false,
            );
            assert_eq!(
                verdict(&r),
                verdict(&base),
                "{name}: verdict drifted under symmetry={symmetry} sleep={sleep_sets}"
            );
            assert!(
                r.states <= base.states,
                "{name}: a reduction cannot grow the space"
            );
        }
        // Uniform cost vs DFS on the bounded systems: the min-depth
        // frontier truncates at exactly the same depth cut, so the
        // census must match bit for bit — unreduced and under the
        // symmetry quotient.
        for symmetry in [false, true] {
            let d = explore_with(scenario.clone(), SearchMode::Dfs, symmetry, false, false);
            let u = explore_with(scenario.clone(), SearchMode::Ucs, symmetry, false, false);
            assert_eq!(
                verdict(&u),
                verdict(&base),
                "{name}: ucs verdict drifted under symmetry={symmetry}"
            );
            assert_eq!(
                census(&u),
                census(&d),
                "{name}: ucs/dfs census drift under symmetry={symmetry}"
            );
        }
    }
}

/// The pinned unreduced counts: the representation and reduction work
/// must not have changed the *full* semantics. These are the PR 3
/// exhaustive counts, now reproduced with every reduction off.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
fn unreduced_counts_match_the_pr3_semantics() {
    for search in [SearchMode::Dfs, SearchMode::Ucs] {
        let r = explore_with(
            sink2(64, 0, "silent", vec![3, 9]),
            search,
            false,
            false,
            false,
        );
        assert_eq!(r.states, 1_785, "search={}", search.name());
        let r = explore_with(sink2(96, 1, "silent", vec![7]), search, false, false, false);
        assert_eq!(r.states, 1_116, "search={}", search.name());
        let r = explore_with(split22(48), search, false, false, false);
        assert_eq!(r.states, 20_880, "search={}", search.name());
        assert_eq!(r.violating, 3_240, "search={}", search.name());
        assert_eq!(r.min_violation_depth, Some(16), "search={}", search.name());
    }
}

/// The full (unreduced) semantics of the new full-stack systems, pinned:
/// a change here means the protocol models themselves changed, not just a
/// reduction.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
fn unreduced_counts_pin_the_full_stack_semantics() {
    for search in [SearchMode::Dfs, SearchMode::Ucs] {
        let r = explore_with(bftcup_sink2(64, 0), search, false, false, false);
        assert_eq!(r.states, 180, "search={}", search.name());
        assert!(r.complete && r.violating == 0);
        let r = explore_with(sink2_discovery(64), search, false, false, false);
        assert_eq!(r.states, 21_516, "search={}", search.name());
        assert!(r.complete && r.violating == 0);
        assert_eq!(r.decided_values, vec![3, 9]);
    }
}

/// 1/2/8-worker bit-identity under the uniform-cost frontier: the
/// strided root sharding and the compact-table merge must not leak the
/// worker count into any deterministic report field, including on
/// systems with live adversary variants (where the victim-split index
/// is part of the visited key).
#[test]
fn uniform_cost_reports_are_bit_identical_across_worker_counts() {
    let systems = vec![
        sink2(6, 0, "equivocate", vec![7]),
        split22(17),
        bftcup_equiv_leader(4),
        sink2_discovery(12),
    ];
    let registry = AdversaryRegistry::builtin();
    for mut s in systems {
        s.explore.search = SearchMode::Ucs;
        let base = explore_scenario(&s, 1, &registry);
        assert_eq!(base.error, None, "{}", s.name);
        for threads in [2, 8] {
            let other = explore_scenario(&s, threads, &registry);
            assert_eq!(
                deterministic_view(base.clone()),
                deterministic_view(other),
                "{}: workers=1 vs workers={threads}",
                s.name
            );
        }
    }
}
