//! Integration tests for the bounded model checker: determinism across
//! worker counts, exhaustive verdicts on the campaign systems, and the
//! seeded counterexample.

use scup_harness::campaign::{Campaign, CampaignMode};
use scup_harness::scenario::{
    ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, SearchMode, TopologySpec,
};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::explore_scenario;
use scup_mc::{run_explore_campaign, ExploreRecord};
use stellar_cup::attempts::LocalSliceStrategy;

/// The n = 4 positive system of `campaigns/explore.toml`: a 2-member
/// sink with two silent Byzantine outsiders.
fn sink2(steps: u32, timer_budget: u32, adversary: &str, inputs: Vec<u64>) -> Scenario {
    Scenario::builder("sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary(adversary)
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .inputs(inputs)
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget,
            ..Default::default()
        })
        .build()
}

/// The seeded known-bad system: two disjoint 2-cliques with local slices.
fn split22() -> Scenario {
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .explore(ExploreSpec {
            max_steps: 48,
            timer_budget: 0,
            expect_violation: true,
            ..Default::default()
        })
        .build()
}

/// A step-bounded cut of the bad system: still finds the depth-16
/// violation, at a small fraction of the full 20 880-state space (keeps
/// the debug-mode suite fast and stresses truncated-state merging).
fn split22_bounded() -> Scenario {
    let mut s = split22();
    s.explore.max_steps = 17;
    s
}

/// Strips the fields outside the bit-identical contract: wall-clock time
/// and the traversal-effort counters (how hard this particular worker
/// partition worked — not what it found). The `obs` block is effort
/// telemetry end to end — timings, occupancy, re-expansions — so it is
/// excluded wholesale.
fn deterministic_view(mut r: ExploreRecord) -> ExploreRecord {
    r.wall_micros = 0;
    r.transitions = 0;
    r.sleep_prunes = 0;
    r.obs = None;
    // Forensics is opt-in annotation on the rendered counterexample;
    // like `obs`, it is outside the bit-identity contract.
    if let Some(v) = &mut r.violation {
        v.forensics = None;
    }
    r
}

#[test]
fn exhaustive_pass_on_the_positive_system() {
    let r = explore_scenario(
        &sink2(64, 0, "silent", vec![3, 9]),
        2,
        &AdversaryRegistry::builtin(),
    );
    assert_eq!(r.error, None);
    assert!(r.complete, "the state space must be exhausted");
    assert_eq!(r.truncated, 0);
    assert_eq!(r.violating, 0);
    // Both proposals are reachable decisions (nomination order picks the
    // winner), but no schedule ever splits them.
    assert_eq!(r.decided_values, vec![3, 9]);
    assert!(r.decided > 0);
    // Silent Byzantines beyond f = 0: the structural premise does not
    // hold — yet safety holds on every schedule, which is the point.
    assert!(!r.premise);
    assert!(r.passed);
    // The canonical state count is part of the deterministic contract; a
    // change here means the protocol or the reductions changed. (1 785
    // without reductions — see tests/differential.rs, which pins that the
    // verdicts agree; eager-inert flood-tail collapsing plus the
    // interchangeable-outsider quotient bring it to 287.)
    assert_eq!(r.states, 287);
}

#[test]
fn timer_choices_stay_safe_and_exhaustive() {
    let no_timers = explore_scenario(
        &sink2(96, 0, "silent", vec![7]),
        2,
        &AdversaryRegistry::builtin(),
    );
    let r = explore_scenario(
        &sink2(96, 1, "silent", vec![7]),
        2,
        &AdversaryRegistry::builtin(),
    );
    assert_eq!(r.error, None);
    assert!(r.complete);
    assert_eq!(r.violating, 0);
    assert_eq!(r.decided_values, vec![7]);
    assert_eq!(r.states, 208);
    assert!(
        r.states > no_timers.states,
        "timer choice points must enlarge the space"
    );
}

#[test]
fn equivocation_explores_both_victim_splits() {
    let r = explore_scenario(
        &sink2(6, 0, "equivocate", vec![7]),
        2,
        &AdversaryRegistry::builtin(),
    );
    assert_eq!(r.error, None);
    assert_eq!(r.variants, 2, "both adversary splits are choice points");
    assert_eq!(r.violating, 0, "agreement survives the equivocator");
    assert!(
        !r.complete,
        "the bounded run is transparent about truncation"
    );
    assert!(r.truncated > 0);
}

#[test]
fn seeded_bad_system_yields_minimal_counterexample() {
    let r = explore_scenario(&split22(), 2, &AdversaryRegistry::builtin());
    assert_eq!(r.error, None);
    assert!(r.complete);
    assert!(
        r.violating > 0,
        "every maximal schedule splits the decision"
    );
    assert_eq!(r.min_violation_depth, Some(16));
    assert!(!r.premise, "two sinks: the structural premise fails");
    let cex = r.violation.expect("minimal counterexample rendered");
    assert_eq!(cex.depth, 16);
    assert!(
        cex.violations.iter().any(|v| v.starts_with("agreement:")),
        "{:?}",
        cex.violations
    );
    assert!(
        cex.schedule.len() >= cex.depth as usize,
        "the schedule includes every fired event"
    );
    // The split decision is visible in the final state.
    let decided: Vec<_> = cex.decisions.iter().flatten().collect();
    assert!(decided.contains(&&1) && decided.contains(&&2));
    assert!(r.passed, "expect_violation makes the find a pass");
}

/// The fig1-style BFT-CUP system of `campaigns/explore.toml`.
fn bftcup_sink2(steps: u32, timer_budget: u32) -> Scenario {
    Scenario::builder("bftcup-sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary("silent")
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(vec![3, 9])
        .explore(ExploreSpec {
            max_steps: steps,
            timer_budget,
            ..Default::default()
        })
        .build()
}

#[test]
fn bftcup_explores_exhaustively_with_no_agreement_split() {
    let r = explore_scenario(&bftcup_sink2(64, 0), 2, &AdversaryRegistry::builtin());
    assert_eq!(r.error, None, "BFT-CUP now has exploration support");
    assert!(r.complete, "the fig1-style system must be exhausted");
    assert_eq!(r.violating, 0, "no schedule splits a decision");
    // Leader-based consensus: every deciding schedule decides the view-0
    // leader's proposal (contrast SCP, where nomination order makes both
    // proposals reachable).
    assert_eq!(r.decided_values, vec![3]);
    assert!(r.decided > 0);
    // Schedules where consensus messages outran the receivers' discovery
    // quiesce undecided without timers — surfaced, not hidden.
    assert!(r.quiescent_undecided > 0);
    assert!(r.passed);
    // Deterministic canonical state count (see campaigns/explore.toml).
    assert_eq!(r.states, 145);
}

#[test]
fn bftcup_timer_choices_recover_stalled_schedules() {
    let no_timers = explore_scenario(&bftcup_sink2(64, 0), 2, &AdversaryRegistry::builtin());
    let r = explore_scenario(&bftcup_sink2(96, 1), 2, &AdversaryRegistry::builtin());
    assert_eq!(r.error, None);
    assert!(r.complete);
    assert_eq!(r.violating, 0);
    assert!(
        r.states > no_timers.states,
        "view-change timers enlarge the space"
    );
    // View rotation makes the second member's proposal reachable too: a
    // schedule where view 0 stalls hands the proposer role to member 1.
    assert_eq!(r.decided_values, vec![3, 9]);
}

#[test]
fn bftcup_forged_slice_explores_both_victim_splits() {
    // BFT-CUP has no slices to forge: `forged-slice` maps onto the same
    // split-parameterized equivocating leader as `equivocate`, so both
    // adversary names must enumerate BOTH victim-split variants and
    // produce the identical record (a `variants() == 1` regression would
    // silently halve the explored attack schedules while still reporting
    // `complete`).
    let scenario = |adversary: &str| {
        let mut s = bftcup_sink2(4, 0);
        s.topology = TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        };
        s.f = 1;
        s.adversary = adversary.into();
        s.faults = FaultPlacement::Ids(vec![0]);
        s.inputs = Some(vec![7]);
        s
    };
    let registry = AdversaryRegistry::builtin();
    let equiv = explore_scenario(&scenario("equivocate"), 2, &registry);
    let forged = explore_scenario(&scenario("forged-slice"), 2, &registry);
    assert_eq!(equiv.error, None);
    assert_eq!(forged.error, None);
    assert_eq!(equiv.variants, 2, "both split parities are choice points");
    assert_eq!(forged.variants, 2, "forged-slice is the same BFT adversary");
    // Only the adversary *name* may differ between the two records.
    let mut forged = deterministic_view(forged);
    forged.adversary = "equivocate".into();
    assert_eq!(
        forged,
        deterministic_view(equiv),
        "identical rosters must explore identically"
    );
}

#[test]
fn preresolved_sink_makes_view_changes_explorable() {
    // The `bftcup-equiv-viewchange` campaign scenario, at a depth the
    // debug suite can afford. `preresolve_sink = true` fixes the sink
    // membership before exploration, so the SINK discovery exchange never
    // enters the schedule and the view-0 timers are armed from step 0 —
    // without it the discovery phase swallows the whole depth budget and
    // a timer budget changes nothing (the knob exists because the
    // campaign-bound probe showed identical state counts at budgets 0 and
    // 2). With it, the budget is the difference between "view 0 only" and
    // "view changes past the equivocating leader are choice points".
    let scenario = |timer_budget: u32| {
        let mut s = bftcup_sink2(6, timer_budget);
        s.topology = TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        };
        s.f = 1;
        s.adversary = "equivocate".into();
        s.faults = FaultPlacement::Ids(vec![0]);
        s.inputs = Some(vec![7]);
        s.explore.preresolve_sink = true;
        s
    };
    let registry = AdversaryRegistry::builtin();
    let view0_only = explore_scenario(&scenario(0), 2, &registry);
    let r = explore_scenario(&scenario(2), 2, &registry);
    assert_eq!(r.error, None);
    assert_eq!(r.violating, 0, "no schedule splits across the handoff");
    assert_eq!(r.variants, 2, "both victim-split parities still explored");
    assert!(r.passed);
    // Pinned canonical counts: budget 2 explores every interleaving of
    // view timeouts, ViewChange deliveries (carrying view-0 locks) and
    // the view-1 leader's re-proposal alongside the view-0 traffic.
    assert_eq!(view0_only.states, 1_122);
    assert_eq!(r.states, 28_846);
    // Determinism rides along: the preset-membership boot path must not
    // leak worker scheduling into the report.
    let campaign = |threads: usize| Campaign {
        name: "preresolve-det".into(),
        mode: CampaignMode::Explore,
        threads,
        scenarios: vec![scenario(2)],
    };
    let base = run_explore_campaign(&campaign(1));
    assert!(base.all_passed());
    for threads in [2, 8] {
        let other = run_explore_campaign(&campaign(threads));
        assert_eq!(
            deterministic_view(base.records[0].clone()),
            deterministic_view(other.records[0].clone()),
            "threads=1 vs threads={threads}"
        );
    }
}

#[test]
fn reports_are_bit_identical_across_worker_counts() {
    // The acceptance bar: 1, 2 and 8 workers must produce identical
    // deterministic fields — visited maps merge by minimal depth and the
    // counterexample is recomputed canonically, so sharding cannot leak
    // into the report.
    let campaign = |threads: usize| {
        // Default reductions (symmetry + eager-inert) everywhere, plus
        // one scenario with sleep sets explicitly on (which requires the
        // legacy DFS discipline): the sleep-aware covers are
        // worker-local, so sharding must not leak into any deterministic
        // field.
        let mut sleepy = sink2(10, 0, "silent", vec![3, 9]);
        sleepy.explore.search = SearchMode::Dfs;
        sleepy.explore.sleep_sets = true;
        // The full-stack drivers ride the same contract: BFT-CUP (with
        // its two equivocation variants) and the discovery-interleaved
        // stack, bounded to keep the debug suite quick.
        let mut discovery = sink2(12, 0, "silent", vec![3, 9]);
        discovery.explore.explore_discovery = true;
        let mut bft_equiv = bftcup_sink2(3, 0);
        bft_equiv.topology = TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        };
        bft_equiv.f = 1;
        bft_equiv.adversary = "equivocate".into();
        bft_equiv.faults = FaultPlacement::Ids(vec![0]);
        bft_equiv.inputs = Some(vec![7]);
        Campaign {
            name: "det".into(),
            mode: CampaignMode::Explore,
            threads,
            scenarios: vec![
                // A bounded (truncated) scenario stresses the min-depth merge.
                sleepy,
                sink2(5, 0, "equivocate", vec![7]),
                split22_bounded(),
                bftcup_sink2(64, 0),
                bft_equiv,
                discovery,
            ],
        }
    };
    let base = run_explore_campaign(&campaign(1));
    assert!(base.all_passed());
    assert!(
        base.records
            .iter()
            .any(|r| r.symmetry_group > 1 || r.sleep_prunes > 0),
        "the determinism bar must be cleared with reductions actually engaged"
    );
    for threads in [2, 8] {
        let other = run_explore_campaign(&campaign(threads));
        for (a, b) in base.records.iter().zip(&other.records) {
            assert_eq!(
                deterministic_view(a.clone()),
                deterministic_view(b.clone()),
                "threads=1 vs threads={threads}"
            );
        }
    }
}

#[test]
// Runs the three new campaign scenarios at their full campaign bounds
// across 1/2/8 workers; affordable in release, slow unoptimized.
#[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
fn new_campaign_scenarios_are_bit_identical_across_worker_counts() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../campaigns/explore.toml"),
    )
    .expect("campaigns/explore.toml");
    let parsed = scup_harness::campaign_from_str(&text).unwrap();
    let new_names = [
        "bftcup-sink2-outsiders",
        "bftcup-equiv-leader",
        "sink2-discovery-interleaved",
    ];
    let scenarios: Vec<_> = parsed
        .scenarios
        .iter()
        .filter(|s| new_names.contains(&s.name.as_str()))
        .cloned()
        .collect();
    assert_eq!(scenarios.len(), 3, "all three new scenarios must ship");
    let campaign = |threads: usize| Campaign {
        name: "det-full".into(),
        mode: CampaignMode::Explore,
        threads,
        scenarios: scenarios.clone(),
    };
    let base = run_explore_campaign(&campaign(1));
    assert!(base.all_passed());
    // The campaign-documented state counts, pinned here so a semantics
    // change cannot slip through as a silent count drift (the
    // equivocating-leader bound rose to depth 7 under the PR 10
    // fingerprint table and its raised valve).
    let states: Vec<u64> = base.records.iter().map(|r| r.states).collect();
    assert_eq!(states, vec![145, 346_252, 1_487]);
    for threads in [2, 8] {
        let other = run_explore_campaign(&campaign(threads));
        for (a, b) in base.records.iter().zip(&other.records) {
            assert_eq!(
                deterministic_view(a.clone()),
                deterministic_view(b.clone()),
                "threads=1 vs threads={threads}"
            );
        }
    }
}

#[test]
fn observability_never_changes_a_verdict() {
    // The observability acceptance bar: profiling, trace collection and
    // causal forensics ride alongside the search — same verdicts, same
    // state census, same minimal counterexample depth, bit-identical
    // deterministic fields — at every worker count. Only the `obs`
    // block, the Chrome events and the counterexample's `forensics`
    // annotation may differ from an unobserved run.
    use scup_mc::{run_explore_campaign_obs, ObsConfig};
    let campaign = |threads: usize| Campaign {
        name: "obs-diff".into(),
        mode: CampaignMode::Explore,
        threads,
        scenarios: vec![
            sink2(64, 0, "silent", vec![3, 9]),
            split22_bounded(),
            bftcup_sink2(64, 0),
        ],
    };
    let off = run_explore_campaign(&campaign(1));
    assert!(off.all_passed());
    assert!(off.records.iter().all(|r| r.obs.is_none()));
    assert!(
        off.records
            .iter()
            .filter_map(|r| r.violation.as_ref())
            .all(|v| v.forensics.is_none()),
        "forensics stays off by default"
    );
    let full = ObsConfig {
        profile: true,
        trace: true,
        forensics: true,
    };
    for threads in [1, 2, 8] {
        let (on, events) = run_explore_campaign_obs(&campaign(threads), full);
        assert!(!events.is_empty(), "tracing must emit worker timelines");
        let mut saw_forensics = false;
        for (a, b) in off.records.iter().zip(&on.records) {
            let obs = b.obs.as_ref().expect("profiling populates the obs block");
            assert!(
                obs.phases.iter().map(|p| p.laps).sum::<u64>() > 0,
                "phase laps must be attributed"
            );
            assert_eq!(obs.visited_len, a.states, "occupancy matches the census");
            if let Some(v) = &b.violation {
                saw_forensics |= v.forensics.is_some();
            }
            // Everything inside the bit-identity contract is unchanged.
            assert_eq!(
                deterministic_view(a.clone()),
                deterministic_view(b.clone()),
                "obs-off/1 vs obs-on/{threads}"
            );
        }
        assert!(
            saw_forensics,
            "forensics-on must annotate the split22 counterexample"
        );
    }
}

#[test]
fn split22_cex_forensics_explains_the_violation() {
    // The forensic acceptance bar on the canonical split-quorum
    // counterexample: the causal cone is a strict subset of the full
    // event log, and every provenance chain walks back to initial
    // proposals.
    use scup_mc::{run_explore_campaign_obs, ObsConfig};
    let campaign = Campaign {
        name: "forensics".into(),
        mode: CampaignMode::Explore,
        threads: 2,
        scenarios: vec![split22()],
    };
    let obs = ObsConfig {
        forensics: true,
        ..Default::default()
    };
    let (report, _) = run_explore_campaign_obs(&campaign, obs);
    let record = &report.records[0];
    assert!(record.passed, "split22 expects its violation");
    let cex = record.violation.as_ref().expect("a counterexample");
    let forensics = cex
        .forensics
        .as_ref()
        .expect("forensics-on annotates the counterexample");
    assert!(!forensics.violations.is_empty());
    assert!(
        !forensics.anchors.is_empty(),
        "the agreement finding names the disagreeing processes"
    );
    assert!(
        !forensics.cone.is_empty() && forensics.cone.len() < forensics.total_events,
        "cone ({}) must be a strict subset of the event log ({})",
        forensics.cone.len(),
        forensics.total_events
    );
    assert!(!forensics.chains.is_empty());
    for chain in &forensics.chains {
        assert!(
            chain.rooted,
            "chain for p{} must terminate at proposals: {:?}",
            chain.process, chain.unresolved
        );
        assert!(
            chain.roots.iter().any(|r| r.contains("propose")),
            "roots must be initial proposals: {:?}",
            chain.roots
        );
    }
    assert!(
        forensics.dot.starts_with("digraph") && forensics.dot.contains("cluster_p0"),
        "the DOT render clusters events by process"
    );
    // The analysis is embedded in the report JSON under the violation.
    let json = report.to_json();
    let rec = &json.get("records").unwrap().as_arr().unwrap()[0];
    let block = rec.get("violation").unwrap().get("forensics").unwrap();
    assert!(block.get("chains").is_some());
    assert_eq!(
        block.get("events").unwrap().get("cone").unwrap().as_i64(),
        Some(forensics.cone.len() as i64)
    );
}

#[test]
fn explore_campaign_json_round_trips() {
    let campaign = Campaign {
        name: "json".into(),
        mode: CampaignMode::Explore,
        threads: 2,
        scenarios: vec![split22_bounded()],
    };
    let report = run_explore_campaign(&campaign);
    let json = report.to_json();
    assert_eq!(json.get("mode").unwrap().as_str(), Some("explore"));
    let rec = &json.get("records").unwrap().as_arr().unwrap()[0];
    assert_eq!(rec.get("complete").unwrap().as_bool(), Some(false));
    assert!(rec.get("violation").unwrap().get("schedule").is_some());
    assert!(scup_harness::json::parse(&json.pretty()).is_ok());
}

#[test]
fn campaign_file_parses_into_explore_mode() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../campaigns/explore.toml"),
    )
    .expect("campaigns/explore.toml");
    let campaign = scup_harness::campaign_from_str(&text).unwrap();
    assert_eq!(campaign.mode, CampaignMode::Explore);
    assert_eq!(campaign.scenarios.len(), 10);
    let handoff = campaign
        .scenarios
        .iter()
        .find(|s| s.name == "bftcup-equiv-viewchange")
        .expect("the lock-handoff scenario ships in the campaign");
    assert!(handoff.explore.preresolve_sink);
    assert_eq!(handoff.explore.timer_budget, 2);
    assert_eq!(handoff.explore.max_states, 700_000);
    let bftcup = campaign
        .scenarios
        .iter()
        .find(|s| s.name == "bftcup-sink2-outsiders")
        .expect("the BFT-CUP scenario ships in the campaign");
    assert_eq!(bftcup.protocol, ProtocolSpec::BftCup);
    let stack = campaign
        .scenarios
        .iter()
        .find(|s| s.name == "sink2-discovery-interleaved")
        .expect("the discovery-interleaved scenario ships in the campaign");
    assert!(stack.explore.explore_discovery);
    let sink3 = campaign
        .scenarios
        .iter()
        .find(|s| s.name == "sink3-proposers")
        .expect("the three-active-proposer scenario ships in the campaign");
    assert!(sink3.explore.eager_inert && sink3.explore.symmetry);
    let bad = campaign
        .scenarios
        .iter()
        .find(|s| s.name == "split-quorums-bad")
        .unwrap();
    assert!(bad.explore.expect_violation);
    assert_eq!(bad.inputs.as_deref(), Some(&[1, 1, 2, 2][..]));
}
