//! Property: sampling ⊆ exploration. Any agreement/validity verdict that
//! 200 seeded campaign runs can reach on a scenario must also be reachable
//! by the explorer — a sampled schedule is one point of the space the
//! explorer covers. (The converse is false by design: the explorer finds
//! interleavings sampling misses.)

use proptest::prelude::*;
use scup_harness::campaign::run_one;
use scup_harness::scenario::{ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, TopologySpec};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::explore_scenario;
use stellar_cup::attempts::LocalSliceStrategy;

/// The pool of small scenarios where the explorer's bounds demonstrably
/// cover the whole space (`complete = true`), so the subset claim is
/// meaningful for both violating and agreeing verdicts. All three are the
/// non-intertwined clustered system under different input assignments:
/// split inputs (every schedule disagrees), a common input (agreement
/// holds despite the broken structure), and mixed inputs (sampling only
/// ever sees agreement on the max value; the explorer additionally finds
/// the disagreeing interleavings).
fn pool(which: usize, seed_base: u64) -> Scenario {
    // Split inputs both ways and the common-input case; the fully mixed
    // assignment ([1, 2] in *both* cliques) is a 3-million-state space —
    // real, but not property-test material.
    let inputs = match which % 3 {
        0 => vec![1, 1, 2, 2],
        1 => vec![5],
        _ => vec![2, 2, 1, 1],
    };
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(inputs)
        .seeds(seed_base, 200)
        .explore(ExploreSpec {
            max_steps: 64,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The BFT-CUP pool: the fig1-style 2-member-sink system with silent
/// outsiders, in the two configurations the differential suite proves the
/// explorer exhausts (`complete = true`). Case 0 splits the sink's
/// proposals and explores with a timer budget, so sampled view-change
/// timeouts have explored counterparts; case 1 gives both members the
/// same proposal (the only sampled-or-explored decision is that value).
fn bftcup_pool(which: usize, seed_base: u64) -> Scenario {
    let (inputs, max_steps, timer_budget) = match which % 2 {
        0 => (vec![3, 9], 96, 1),
        _ => (vec![5, 5], 64, 0),
    };
    Scenario::builder("bftcup-sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary("silent")
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(inputs)
        .seeds(seed_base, 200)
        .explore(ExploreSpec {
            max_steps,
            timer_budget,
            ..Default::default()
        })
        .build()
}

/// The shared property body: 200 seeded sampled runs, then one
/// exploration; every sampled verdict class must be present in the
/// explored (exhaustive) space.
fn assert_sampling_subset_of_exploration(scenario: &Scenario) {
    let registry = AdversaryRegistry::builtin();

    let mut sampled_violation = false;
    let mut sampled_agreed_values = Vec::new();
    for seed in scenario.seed_base..scenario.seed_base + scenario.seeds {
        let run = run_one(scenario, seed, &registry);
        prop_assert_eq!(run.error, None);
        let inv = &run.invariants;
        if !inv.agreement || inv.validity == Some(false) {
            sampled_violation = true;
        } else if let Some(v) = run.decided_value {
            if !sampled_agreed_values.contains(&v) {
                sampled_agreed_values.push(v);
            }
        }
    }

    let record = explore_scenario(scenario, 2, &registry);
    prop_assert_eq!(record.error, None);
    prop_assert!(record.complete, "pool scenarios must be exhaustible");

    // Sampling ⊆ exploration, per verdict class:
    if sampled_violation {
        prop_assert!(
            record.violating > 0,
            "a sampled violation must exist in the explored space"
        );
    }
    for v in sampled_agreed_values {
        prop_assert!(
            record.decided_values.contains(&v),
            "sampled agreed value {v} missing from explored terminals {:?}",
            record.decided_values
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    // ~20k explored states per violating case; affordable in release, slow
    // unoptimized (the explore-smoke CI job runs with --include-ignored).
    #[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
    fn sampled_verdicts_are_reachable_by_exploration(which in 0usize..3, seed_base in 0u64..1000) {
        assert_sampling_subset_of_exploration(&pool(which, seed_base));
    }

    #[test]
    // BFT-CUP twin of the property above: the sampled full-stack runs
    // (discovery + consensus + dissemination) land inside the explored
    // schedule space.
    #[cfg_attr(debug_assertions, ignore = "release-only; see explore-smoke CI job")]
    fn sampled_bftcup_verdicts_are_reachable_by_exploration(
        which in 0usize..2,
        seed_base in 0u64..1000,
    ) {
        assert_sampling_subset_of_exploration(&bftcup_pool(which, seed_base));
    }
}
