//! **scup-mc** — a bounded model checker for small FBQS systems.
//!
//! The campaigns of `scup-harness` *sample* schedules: hundreds of seeded
//! runs per scenario. But the paper's safety claims — Theorem 3's
//! intertwined guarantee, agreement and validity of federated voting under
//! Definition 1 quorums — are universally quantified over *all* message
//! schedules and Byzantine choices, and a sampler can miss the one
//! interleaving that breaks them (exactly how "Deconstructing Stellar
//! Consensus" motivates exhaustive exploration of abstract Stellar). This
//! crate closes that gap for small systems:
//!
//! - [`build`] resolves any harness [`Scenario`](scup_harness::Scenario)
//!   (topology family, adversary, protocol) into a concrete roster of
//!   forkable actors — the knowledge-increase phase runs once,
//!   deterministically, and exploration quantifies over the SCP phase;
//! - [`explorer`] runs a uniform-cost (min-depth-first) search over
//!   *canonical* states (powered by [`scup_sim::ExploreSim`]'s
//!   snapshot/restore and 128-bit state hashing) with verdict-preserving
//!   reductions: a compact [`visited`] fingerprint table, eager firing
//!   of absorbed no-op deliveries, hash-collapsed commutation diamonds
//!   (every pending event is a branch choice — privileging a recipient
//!   would prune real schedules), a [`reduce`] symmetry quotient over
//!   interchangeable processes (full permutations including rotations,
//!   with a victim-split quotient for equivocating adversaries),
//!   eager-inert persistent sets over threshold-inert deliveries (the
//!   lever that exhausts a third active proposer), and — under the
//!   legacy `search = "dfs"` discipline — knob-gated sleep sets.
//!   Differential tests pin that every reduction (and the uniform-cost
//!   discipline itself) agrees with the unreduced DFS semantics on
//!   violation/no-violation, minimal counterexample depth, decided
//!   values and completeness. Equivocating adversaries contribute their
//!   victim-split choice points as explored variants;
//! - [`campaign`] integrates with `mode = "explore"` campaign files: the
//!   first `frontier_depth` branch decisions are sharded across workers
//!   (deterministic stride, mutex-free), per-worker maps merge by minimal
//!   depth, and every reported number is a pure function of the campaign
//!   file — bit-identical for 1, 2 or 8 workers;
//! - on a violation, [`report`] renders the **canonical minimal
//!   counterexample**: the shortest schedule (lexicographically first
//!   among equals) reaching a safety violation, replayed through the
//!   trace module so it can be inspected event by event.
//!
//! Soundness notes: the untimed semantics over-approximates partial
//! synchrony, so a clean exhaustive pass covers every delivery timing
//! within the step/timer bounds; truncated states mark the verdict
//! incomplete and are reported. Liveness is out of scope — SCP's
//! termination needs timing assumptions by design.
//!
//! # Example
//!
//! The Theorem-2 pathology, found mechanically: two disjoint 2-cliques
//! build slices locally, and every maximal schedule splits the decision —
//! here bounded to 20 branching steps (deep enough for the proof), the
//! explorer finds it and renders the canonical minimal counterexample
//! (run unbounded, e.g. `max_steps: 48` as in `campaigns/explore.toml`,
//! the same scenario is fully exhausted: 20 880 states, 3 240 violating).
//!
//! ```
//! use scup_harness::scenario::{
//!     ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, TopologySpec,
//! };
//! use scup_harness::AdversaryRegistry;
//! use scup_mc::campaign::explore_scenario;
//! use stellar_cup::attempts::LocalSliceStrategy;
//!
//! let scenario = Scenario::builder("split-quorums")
//!     .topology(TopologySpec::Clustered {
//!         clusters: 2,
//!         cluster_size: 2,
//!         bridges: 0,
//!         intra_extra_prob: 0.0,
//!         inter_extra_prob: 0.0,
//!     })
//!     .f(0)
//!     .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
//!     .faults(FaultPlacement::None)
//!     .inputs(vec![1, 1, 2, 2])
//!     .explore(ExploreSpec {
//!         max_steps: 20,
//!         timer_budget: 0,
//!         expect_violation: true,
//!         ..Default::default()
//!     })
//!     .build();
//! let record = explore_scenario(&scenario, 2, &AdversaryRegistry::builtin());
//! assert!(record.violating > 0, "agreement breaks within the bound");
//! let cex = record.violation.expect("minimal counterexample");
//! assert_eq!(cex.depth, 16);
//! assert!(cex.violations[0].starts_with("agreement:"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod campaign;
pub mod explorer;
pub mod reduce;
pub mod report;
pub mod visited;

pub use build::{BftDriver, Driver, ScpDriver, Setup, StackDriver};
pub use campaign::{
    explore_scenario, explore_scenario_obs, run_explore_campaign, run_explore_campaign_obs,
    summary, ObsConfig,
};
pub use explorer::{Class, Engine, Visited};
pub use reduce::Symmetry;
pub use report::{CexReport, ExploreObs, ExploreRecord, ExploreReport, PhaseRow};
pub use visited::{FpEntry, FpTable, Recorded};
