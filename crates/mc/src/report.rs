//! Exploration reports: per-scenario records, counterexample rendering,
//! and the JSON shape.
//!
//! Every field except the `wall_micros` timings, the traversal-effort
//! counters (`transitions`, `sleep_prunes` — how hard the particular
//! worker partition had to work, not what it found) and the optional
//! `obs` profiling payload is a pure function of the campaign file —
//! identical across runs, machines and worker counts. The determinism
//! test in `tests/explore.rs` pins that down.

use scup_harness::json::Json;
use scup_obs::profile::{Phase, PhaseProfile};
use scup_scp::Value;

/// Time and stamp count attributed to one explorer phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Stable phase name (`restore`, `expand`, `fingerprint`,
    /// `canonicalize`, `dedup`, `settle`).
    pub phase: &'static str,
    /// Total nanoseconds attributed to the phase, summed over workers.
    pub nanos: u64,
    /// Number of lap stamps (≈ occurrences) attributed to the phase.
    pub laps: u64,
}

/// Observability payload for one explored scenario: phase timing,
/// re-expansion effort, visited-set occupancy, and the frontier-depth
/// series. Only present when the campaign ran with profiling on, and
/// **always excluded from the bit-identical report contract** — every
/// value here is timing- or partition-dependent, like `wall_micros`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreObs {
    /// Per-phase wall time, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseRow>,
    /// Re-expansions of already-visited states (label correction).
    pub reexpansions: u64,
    /// Entries in the merged visited map.
    pub visited_len: u64,
    /// Allocated capacity of the merged visited map.
    pub visited_capacity: u64,
    /// Largest per-worker visited map (entries) before merging.
    pub worker_visited_peak: u64,
    /// Sampled `(transitions, branching depth)` pairs over the run.
    pub depth_samples: Vec<(u64, u32)>,
}

impl ExploreObs {
    /// Builds the phase rows from a merged worker profile.
    pub fn phase_rows(profile: &PhaseProfile) -> Vec<PhaseRow> {
        Phase::ALL
            .iter()
            .map(|&p| PhaseRow {
                phase: p.name(),
                nanos: profile.nanos(p),
                laps: profile.count(p),
            })
            .collect()
    }

    /// The payload as structured JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("phase", Json::Str(r.phase.to_string())),
                                ("nanos", Json::Int(r.nanos as i64)),
                                ("laps", Json::Int(r.laps as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("reexpansions", Json::Int(self.reexpansions as i64)),
            ("visited_len", Json::Int(self.visited_len as i64)),
            ("visited_capacity", Json::Int(self.visited_capacity as i64)),
            (
                "worker_visited_peak",
                Json::Int(self.worker_visited_peak as i64),
            ),
            (
                "depth_samples",
                Json::Arr(
                    self.depth_samples
                        .iter()
                        .map(|&(t, d)| Json::Arr(vec![Json::Int(t as i64), Json::Int(d as i64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A rendered minimal counterexample: the canonical shortest schedule
/// (ties broken lexicographically by choice order) reaching a safety
/// violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CexReport {
    /// Branching depth of the violating state (absorbed no-op deliveries
    /// excluded).
    pub depth: u32,
    /// The adversary variant (victim split) the schedule drives.
    pub variant: u32,
    /// The violated oracles, as human-readable descriptions.
    pub violations: Vec<String>,
    /// The full replayable schedule (every fired event, absorbed ones
    /// included), rendered from the trace module.
    pub schedule: Vec<String>,
    /// Per-process decisions in the violating state.
    pub decisions: Vec<Option<Value>>,
    /// Causal forensics of the violation — the causal cone of the bad
    /// decisions and their provenance chains — when the campaign ran with
    /// forensics on. Deterministic (the replay is), but present only
    /// under the flag, so the forensics-off report shape is unchanged
    /// modulo this one `null`.
    pub forensics: Option<scup_harness::forensics::ForensicReport>,
}

/// The exploration outcome for one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreRecord {
    /// Scenario name.
    pub scenario: String,
    /// Topology family name.
    pub family: String,
    /// Adversary reference.
    pub adversary: String,
    /// Protocol name.
    pub protocol: String,
    /// Number of processes.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// The faulty processes.
    pub faulty: Vec<u32>,
    /// The structural premise of the positive theorems held.
    pub premise: bool,
    /// Adversary variants explored.
    pub variants: u32,
    /// Distinct canonical states visited (all variants).
    pub states: u64,
    /// Inner (expanded) states.
    pub expanded: u64,
    /// Terminal states where every correct process externalized the same
    /// value (the safety verdict is frozen there, pending flood or not).
    pub decided: u64,
    /// Quiescent states with partial or no decision (agreement intact).
    pub quiescent_undecided: u64,
    /// States cut by the step bound (exploration incomplete past them).
    pub truncated: u64,
    /// States whose decisions violate agreement or validity.
    pub violating: u64,
    /// Every value some fully-decided terminal state agreed on.
    pub decided_values: Vec<Value>,
    /// `true` when no state was truncated: the verdict covers *every*
    /// schedule within the timer budget, not just the bounded prefix.
    pub complete: bool,
    /// Frontier subtree roots sharded across workers (deterministic: the
    /// serial prefix expansion does not depend on the worker count).
    pub frontier_roots: u64,
    /// Order of the symmetry automorphism group (1 = no reduction).
    pub symmetry_group: u64,
    /// Sizes of the interchangeable-process classes the group acts on.
    pub symmetry_classes: Vec<u64>,
    /// Candidate symmetry classes never expanded because of the
    /// permutation-group cap — a dropped class costs coverage of its
    /// arrangements, so it is counted, never silent.
    pub symmetry_dropped_classes: u64,
    /// Non-identity arrangements the dropped classes would have
    /// contributed (Σ (|class|! − 1)).
    pub symmetry_dropped_arrangements: u64,
    /// Visited states whose canonical representative is a *renaming* of
    /// the state as reached — how often the symmetry quotient collapsed
    /// something (a pure function of the visited set: deterministic).
    pub symmetric_states: u64,
    /// Branching events fired during exploration, summed over workers.
    /// Traversal effort — partition-dependent, excluded from the
    /// bit-identical contract (like `wall_micros`).
    pub transitions: u64,
    /// Choices skipped by the sleep-set reduction, summed over workers.
    /// Traversal effort — partition-dependent, excluded from the
    /// bit-identical contract (like `wall_micros`).
    pub sleep_prunes: u64,
    /// Rough bytes per forked state (initial-state estimate).
    pub state_bytes_estimate: u64,
    /// Peak-memory estimate: visited entries × (state + visited-entry
    /// bytes). Deterministic.
    pub peak_memory_bytes: u64,
    /// Minimal branching depth of a violation, if any exists.
    pub min_violation_depth: Option<u32>,
    /// The canonical minimal counterexample, if a violation exists.
    pub violation: Option<CexReport>,
    /// Pass/fail under the scenario's oracle mode and `expect_violation`.
    pub passed: bool,
    /// A configuration error, if the scenario could not be explored.
    pub error: Option<String>,
    /// Wall-clock duration, microseconds (excluded from determinism).
    pub wall_micros: u64,
    /// Profiling payload when the campaign ran with obs profiling on
    /// (excluded from determinism, like `wall_micros`).
    pub obs: Option<ExploreObs>,
}

/// The aggregated outcome of an explore-mode campaign.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Campaign name.
    pub name: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// One record per scenario, in declaration order.
    pub records: Vec<ExploreRecord>,
    /// Wall-clock duration of the whole campaign, microseconds.
    pub wall_micros: u64,
}

impl ExploreReport {
    /// `true` when every scenario passed.
    pub fn all_passed(&self) -> bool {
        self.records.iter().all(|r| r.passed)
    }

    /// The report as structured JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("campaign", Json::Str(self.name.clone())),
            ("mode", Json::Str("explore".into())),
            ("threads", Json::Int(self.threads as i64)),
            ("scenarios", Json::Int(self.records.len() as i64)),
            (
                "passed",
                Json::Int(self.records.iter().filter(|r| r.passed).count() as i64),
            ),
            (
                "failed",
                Json::Int(self.records.iter().filter(|r| !r.passed).count() as i64),
            ),
            ("wall_micros", Json::Int(self.wall_micros as i64)),
            (
                "records",
                Json::Arr(self.records.iter().map(ExploreRecord::to_json).collect()),
            ),
        ])
    }
}

impl ExploreRecord {
    /// The record as structured JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("family", Json::Str(self.family.clone())),
            ("adversary", Json::Str(self.adversary.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
            ("n", Json::Int(self.n as i64)),
            ("f", Json::Int(self.f as i64)),
            (
                "faulty",
                Json::Arr(self.faulty.iter().map(|&v| Json::Int(v as i64)).collect()),
            ),
            ("premise", Json::Bool(self.premise)),
            ("variants", Json::Int(self.variants as i64)),
            ("states", Json::Int(self.states as i64)),
            ("expanded", Json::Int(self.expanded as i64)),
            ("decided", Json::Int(self.decided as i64)),
            (
                "quiescent_undecided",
                Json::Int(self.quiescent_undecided as i64),
            ),
            ("truncated", Json::Int(self.truncated as i64)),
            ("violating", Json::Int(self.violating as i64)),
            (
                "decided_values",
                Json::Arr(
                    self.decided_values
                        .iter()
                        .map(|&v| Json::Int(v as i64))
                        .collect(),
                ),
            ),
            ("complete", Json::Bool(self.complete)),
            ("frontier_roots", Json::Int(self.frontier_roots as i64)),
            ("symmetry_group", Json::Int(self.symmetry_group as i64)),
            (
                "symmetry_classes",
                Json::Arr(
                    self.symmetry_classes
                        .iter()
                        .map(|&c| Json::Int(c as i64))
                        .collect(),
                ),
            ),
            (
                "symmetry_dropped_classes",
                Json::Int(self.symmetry_dropped_classes as i64),
            ),
            (
                "symmetry_dropped_arrangements",
                Json::Int(self.symmetry_dropped_arrangements as i64),
            ),
            ("symmetric_states", Json::Int(self.symmetric_states as i64)),
            ("transitions", Json::Int(self.transitions as i64)),
            ("sleep_prunes", Json::Int(self.sleep_prunes as i64)),
            (
                "state_bytes_estimate",
                Json::Int(self.state_bytes_estimate as i64),
            ),
            (
                "peak_memory_bytes",
                Json::Int(self.peak_memory_bytes as i64),
            ),
            (
                "min_violation_depth",
                self.min_violation_depth
                    .map(|d| Json::Int(d as i64))
                    .unwrap_or(Json::Null),
            ),
            (
                "violation",
                self.violation
                    .as_ref()
                    .map(CexReport::to_json)
                    .unwrap_or(Json::Null),
            ),
            ("passed", Json::Bool(self.passed)),
            (
                "error",
                self.error
                    .as_ref()
                    .map(|e| Json::Str(e.clone()))
                    .unwrap_or(Json::Null),
            ),
            ("wall_micros", Json::Int(self.wall_micros as i64)),
            (
                "obs",
                self.obs
                    .as_ref()
                    .map(ExploreObs::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

impl CexReport {
    /// The counterexample as structured JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("depth", Json::Int(self.depth as i64)),
            ("variant", Json::Int(self.variant as i64)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "schedule",
                Json::Arr(self.schedule.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "decisions",
                Json::Arr(
                    self.decisions
                        .iter()
                        .map(|d| d.map(|v| Json::Int(v as i64)).unwrap_or(Json::Null))
                        .collect(),
                ),
            ),
            (
                "forensics",
                self.forensics
                    .as_ref()
                    .map(|f| f.to_json())
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}
