//! Explore-mode campaign execution: one record per scenario, workers
//! sharded over frontier subtrees within each scenario.

use std::collections::BTreeSet;
use std::time::Instant;

use scup_harness::campaign::Campaign;
use scup_harness::scenario::ProtocolSpec;
use scup_harness::{oracle, AdversaryRegistry, OracleMode, Scenario};
use scup_sim::TraceEvent;

use crate::build::{BftDriver, Driver, ScpDriver, Setup, StackDriver};
use crate::explorer::{merge_visited, Class, Engine, StateCapExceeded, Visited, WorkerStats};
use crate::report::{CexReport, ExploreRecord, ExploreReport};

/// Runs an explore-mode campaign: every scenario is exhaustively explored
/// up to its [`ExploreSpec`](scup_harness::scenario::ExploreSpec) bounds.
///
/// Scenarios run serially; within each, frontier subtrees are sharded
/// across `campaign.threads` workers (0 = one per CPU). All deterministic
/// record fields are identical for any worker count.
pub fn run_explore_campaign(campaign: &Campaign) -> ExploreReport {
    let started = Instant::now();
    let registry = AdversaryRegistry::builtin();
    let threads = if campaign.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        campaign.threads
    }
    .max(1);

    let records = campaign
        .scenarios
        .iter()
        .map(|s| explore_scenario(s, threads, &registry))
        .collect();

    ExploreReport {
        name: campaign.name.clone(),
        threads,
        records,
        wall_micros: started.elapsed().as_micros() as u64,
    }
}

/// Explores one scenario.
pub fn explore_scenario(
    scenario: &Scenario,
    threads: usize,
    registry: &AdversaryRegistry,
) -> ExploreRecord {
    let started = Instant::now();
    let mut record = ExploreRecord {
        scenario: scenario.name.clone(),
        family: scenario.topology.family_name().to_string(),
        adversary: scenario.adversary.clone(),
        protocol: scenario.protocol.name().to_string(),
        n: 0,
        f: scenario.f,
        faulty: Vec::new(),
        premise: false,
        variants: 0,
        states: 0,
        expanded: 0,
        decided: 0,
        quiescent_undecided: 0,
        truncated: 0,
        violating: 0,
        decided_values: Vec::new(),
        complete: false,
        frontier_roots: 0,
        symmetry_group: 1,
        symmetry_classes: Vec::new(),
        symmetric_states: 0,
        transitions: 0,
        sleep_prunes: 0,
        state_bytes_estimate: 0,
        peak_memory_bytes: 0,
        min_violation_depth: None,
        violation: None,
        passed: false,
        error: None,
        wall_micros: 0,
    };

    // Topology generators assert their parameter contracts; contain any
    // panic as this scenario's error, like the sampling runner does.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore_configured(scenario, threads, registry, &mut record)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => record.error = Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            record.error = Some(format!("configuration panic: {msg}"));
        }
    }
    record.wall_micros = started.elapsed().as_micros() as u64;
    record
}

fn explore_configured(
    scenario: &Scenario,
    threads: usize,
    registry: &AdversaryRegistry,
    record: &mut ExploreRecord,
) -> Result<(), String> {
    let setup = Setup::from_scenario(scenario, registry)?;
    record.n = setup.kg.n();
    record.faulty = setup.faulty.iter().map(|p| p.as_u32()).collect();
    record.premise = setup.premise;
    record.variants = setup.variants();

    // Protocol dispatch: one generic exploration, three drivers.
    match (setup.protocol, setup.explore_discovery) {
        (ProtocolSpec::BftCup, _) => {
            explore_with_driver(&BftDriver::new(&setup), scenario, threads, record)
        }
        (ProtocolSpec::StellarMinimal, true) => {
            explore_with_driver(&StackDriver::new(&setup), scenario, threads, record)
        }
        _ => explore_with_driver(&ScpDriver::new(&setup), scenario, threads, record),
    }
}

fn explore_with_driver<D: Driver>(
    driver: &D,
    scenario: &Scenario,
    threads: usize,
    record: &mut ExploreRecord,
) -> Result<(), String> {
    let setup = driver.setup();
    let variants = setup.variants();

    let engine = Engine::new(driver, scenario.explore);
    record.symmetry_group = engine.symmetry().group_order();
    record.symmetry_classes = engine.symmetry().class_sizes().to_vec();
    {
        let mut probe = driver.build_sim(0);
        probe.start();
        probe.drain_absorbed();
        record.state_bytes_estimate = probe.state_size_estimate();
    }
    let cap_error = |_: StateCapExceeded| {
        format!(
            "state cap exceeded ({} states); raise `max_states` or tighten \
             `max_steps`/`timer_budget`",
            scenario.explore.max_states
        )
    };

    // Serial prefix: the first `frontier_depth` branch decisions of every
    // variant, recorded into the shared ancestor map.
    let mut prefix: Visited = Visited::new();
    let mut prefix_stats = WorkerStats::default();
    let mut roots: Vec<(u32, Vec<u32>)> = Vec::new();
    for variant in 0..variants {
        for path in engine
            .frontier(variant, &mut prefix, &mut prefix_stats)
            .map_err(cap_error)?
        {
            roots.push((variant, path));
        }
    }
    record.frontier_roots = roots.len() as u64;

    // Sharded subtree exploration: worker `w` takes roots `w, w+T, …`,
    // each starting from a copy of the ancestor map. Merging by minimal
    // depth makes the union partition-independent.
    let workers = threads.min(roots.len()).max(1);
    let (merged, stats) = std::thread::scope(
        |scope| -> Result<(Visited, WorkerStats), StateCapExceeded> {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let roots = &roots;
                    let engine = &engine;
                    let prefix = &prefix;
                    scope.spawn(
                        move || -> Result<(Visited, WorkerStats), StateCapExceeded> {
                            let mut visited = prefix.clone();
                            let mut stats = WorkerStats::default();
                            for (variant, path) in roots.iter().skip(w).step_by(workers) {
                                engine.dfs(*variant, path, &mut visited, &mut stats)?;
                            }
                            Ok((visited, stats))
                        },
                    )
                })
                .collect();
            let mut merged = prefix.clone();
            let mut stats = prefix_stats;
            for handle in handles {
                let (visited, worker_stats) = handle.join().expect("explore worker panicked")?;
                merge_visited(&mut merged, visited);
                stats.absorb(worker_stats);
            }
            // The per-worker checks are early aborts; this is the actual
            // valve. A worker map is a subset of the union, so whether the
            // scenario errors depends only on the (partition-independent)
            // union size — never on the worker count.
            if merged.len() as u64 > scenario.explore.max_states {
                return Err(StateCapExceeded);
            }
            Ok((merged, stats))
        },
    )
    .map_err(cap_error)?;
    record.transitions = stats.transitions;
    record.sleep_prunes = stats.sleep_prunes;

    // Every statistic below is a pure function of the merged map.
    let mut decided: BTreeSet<u64> = BTreeSet::new();
    let mut min_violation: Option<u32> = None;
    for entry in merged.values() {
        record.states += 1;
        if entry.symmetric {
            record.symmetric_states += 1;
        }
        match entry.class {
            Class::Expanded => record.expanded += 1,
            Class::Truncated => record.truncated += 1,
            Class::QuiescentUndecided => record.quiescent_undecided += 1,
            Class::Decided(v) => {
                record.decided += 1;
                decided.insert(v);
            }
            Class::Violating => {
                record.violating += 1;
                min_violation = Some(min_violation.map_or(entry.depth, |d| d.min(entry.depth)));
            }
        }
    }
    record.decided_values = decided.into_iter().collect();
    record.complete = record.truncated == 0;
    record.min_violation_depth = min_violation;
    // Visited-entry overhead: hash key + depth/class/flag + cover spine.
    const VISITED_ENTRY_BYTES: u64 = 96;
    record.peak_memory_bytes = record.states * (record.state_bytes_estimate + VISITED_ENTRY_BYTES);

    if let Some(d_star) = min_violation {
        let (variant, path) = engine
            .find_cex(variants, d_star)
            .expect("a violating state at depth d* is reachable by construction");
        record.violation = Some(render_cex(driver, &engine, variant, &path));
    }

    record.passed = if scenario.explore.expect_violation {
        record.violation.is_some()
    } else {
        match scenario.oracle {
            OracleMode::Require => record.violating == 0,
            OracleMode::Conditional => !record.premise || record.violating == 0,
            OracleMode::Observe => true,
        }
    };
    Ok(())
}

/// Replays the counterexample path with tracing on and renders it.
fn render_cex<D: Driver>(
    driver: &D,
    engine: &Engine<'_, D>,
    variant: u32,
    path: &[u32],
) -> CexReport {
    let setup = driver.setup();
    let mut sim = driver.build_sim(variant);
    sim.enable_trace();
    engine.replay_into(&mut sim, path);
    let decisions = driver.decisions(&sim);

    let schedule = sim
        .trace()
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Delivered {
                from, to, payload, ..
            } => format!("deliver {from}->{to}: {payload}"),
            TraceEvent::Timer { process, tag, .. } => format!("timer {process} tag {tag}"),
            TraceEvent::Sent { .. } => unreachable!("ExploreSim only records deliveries"),
        })
        .collect();

    let invariants = oracle::evaluate(
        &setup.kg,
        setup.f,
        &setup.faulty,
        &setup.inputs,
        &decisions,
        setup.adversary,
    );
    let violations = invariants
        .violations
        .into_iter()
        // Termination is a liveness property; mid-schedule states are
        // legitimately undecided.
        .filter(|v| !v.starts_with("termination"))
        .collect();

    CexReport {
        depth: path.len() as u32,
        variant,
        violations,
        schedule,
        decisions,
    }
}

/// Human-readable summary of an explore report (mirrors the sampling
/// CLI's rollup).
pub fn summary(report: &ExploreReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let passed = report.records.iter().filter(|r| r.passed).count();
    let _ = writeln!(
        out,
        "campaign `{}` (explore): {} scenarios on {} threads in {:.2}s — {} passed, {} failed",
        report.name,
        report.records.len(),
        report.threads,
        report.wall_micros as f64 / 1e6,
        passed,
        report.records.len() - passed,
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>9} {:>9} {:>7} {:>6} {:>9} {:>6}",
        "scenario", "states", "decided", "quiet", "trunc", "violating", "pass"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "  {:<26} {:>9} {:>9} {:>7} {:>6} {:>9} {:>6}",
            r.scenario,
            r.states,
            r.decided,
            r.quiescent_undecided,
            r.truncated,
            r.violating,
            if r.passed { "ok" } else { "FAIL" },
        );
        if r.error.is_none() {
            let classes = r
                .symmetry_classes
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("+");
            let _ = writeln!(
                out,
                "    reductions: symmetry group {} (classes {}), {} symmetric states, \
                 {} sleep prunes / {} transitions; mem ≈ {:.1} MiB ({} B/state × {} states)",
                r.symmetry_group,
                if classes.is_empty() {
                    "-".to_string()
                } else {
                    classes
                },
                r.symmetric_states,
                r.sleep_prunes,
                r.transitions,
                r.peak_memory_bytes as f64 / (1024.0 * 1024.0),
                r.state_bytes_estimate,
                r.states,
            );
        }
        if let Some(e) = &r.error {
            let _ = writeln!(out, "    error: {e}");
        }
        if let Some(cex) = &r.violation {
            let _ = writeln!(
                out,
                "    minimal counterexample (depth {}, variant {}): {}",
                cex.depth,
                cex.variant,
                cex.violations.join("; ")
            );
            for line in &cex.schedule {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    out
}
