//! Explore-mode campaign execution: one record per scenario, workers
//! sharded over frontier subtrees within each scenario.
//!
//! Observability is opt-in via [`ObsConfig`]: profiling adds phase
//! timing, re-expansion counts and visited-set occupancy to each record
//! (`obs` field), and tracing emits a Chrome-trace-event timeline —
//! one Perfetto process track per scenario, one thread track per worker,
//! spans per traversal chunk (one per frontier root under `search =
//! "dfs"`, one per worker under the default uniform-cost search) with
//! per-phase breakdown, plus the serial frontier/merge/counterexample
//! sections on thread 0. Neither mode may change any deterministic
//! record field (pinned by the differential obs test in
//! `tests/explore.rs`).

use std::collections::BTreeSet;
use std::time::Instant;

use scup_harness::campaign::Campaign;
use scup_harness::forensics::ForensicReport;
use scup_harness::scenario::{ProtocolSpec, SearchMode};
use scup_harness::{oracle, AdversaryRegistry, OracleMode, Scenario};
use scup_obs::chrome::{ArgValue, ChromeEvent, TraceBuffer, TraceClock};
use scup_obs::profile::Phase;
use scup_sim::TraceEvent;

use crate::build::{BftDriver, Driver, ScpDriver, Setup, StackDriver};
use crate::explorer::{merge_visited, Class, Engine, StateCapExceeded, Visited, WorkerStats};
use crate::report::{CexReport, ExploreObs, ExploreRecord, ExploreReport};
use crate::visited::{FpEntry, FpTable};

/// What an explore campaign should observe about itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsConfig {
    /// Collect phase timing, re-expansion counts, visited-set occupancy
    /// and the frontier-depth series into each record's `obs` field.
    pub profile: bool,
    /// Emit Chrome-trace-event worker timelines (implies `profile` costs
    /// for the per-root phase breakdown).
    pub trace: bool,
    /// Attach a causal-forensics block to rendered counterexamples: the
    /// minimal schedule is replayed a second time with the causal event
    /// graph and decision provenance armed, and the violation's causal
    /// cone plus per-decision provenance chains land in the record's
    /// `violation.forensics` field. Exploration itself is untouched —
    /// forensics only ever runs on the (deterministic) replay, so every
    /// other record field is bit-identical with forensics off.
    pub forensics: bool,
}

impl ObsConfig {
    /// Everything off — the zero-overhead default.
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// `true` when per-worker phase profiles must be collected.
    fn profiling(self) -> bool {
        self.profile || self.trace
    }
}

/// Observability context threaded through one scenario's exploration.
struct ObsCtx<'a> {
    config: ObsConfig,
    clock: &'a TraceClock,
    pid: u32,
    events: &'a mut Vec<ChromeEvent>,
}

impl ObsCtx<'_> {
    /// Timestamp for a serial span about to start.
    fn span_start(&self) -> u64 {
        self.clock.now_us()
    }

    /// Closes a serial (thread-0) span opened at `ts`.
    fn span_end(&mut self, name: &'static str, ts: u64, args: Vec<(&'static str, ArgValue)>) {
        if self.config.trace {
            self.events.push(ChromeEvent::Complete {
                name: name.to_string(),
                cat: "serial",
                ts,
                dur: self.clock.now_us().saturating_sub(ts),
                pid: self.pid,
                tid: 0,
                args,
            });
        }
    }
}

/// Runs an explore-mode campaign: every scenario is exhaustively explored
/// up to its [`ExploreSpec`](scup_harness::scenario::ExploreSpec) bounds.
///
/// Scenarios run serially; within each, frontier subtrees are sharded
/// across `campaign.threads` workers (0 = one per CPU). All deterministic
/// record fields are identical for any worker count.
pub fn run_explore_campaign(campaign: &Campaign) -> ExploreReport {
    run_explore_campaign_obs(campaign, ObsConfig::off()).0
}

/// Runs an explore-mode campaign with observability: like
/// [`run_explore_campaign`], but additionally returns the Chrome trace
/// events collected under `obs.trace` (empty when tracing is off) and
/// fills each record's `obs` field under `obs.profile`.
pub fn run_explore_campaign_obs(
    campaign: &Campaign,
    obs: ObsConfig,
) -> (ExploreReport, Vec<ChromeEvent>) {
    let started = Instant::now();
    let clock = TraceClock::start();
    let registry = AdversaryRegistry::builtin();
    let threads = if campaign.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        campaign.threads
    }
    .max(1);

    let mut events = Vec::new();
    let records = campaign
        .scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| {
            // Perfetto track per scenario: pids are 1-based.
            explore_scenario_obs(
                s,
                threads,
                &registry,
                obs,
                &clock,
                i as u32 + 1,
                &mut events,
            )
        })
        .collect();

    let report = ExploreReport {
        name: campaign.name.clone(),
        threads,
        records,
        wall_micros: started.elapsed().as_micros() as u64,
    };
    (report, events)
}

/// Explores one scenario (observability off).
pub fn explore_scenario(
    scenario: &Scenario,
    threads: usize,
    registry: &AdversaryRegistry,
) -> ExploreRecord {
    let clock = TraceClock::start();
    let mut events = Vec::new();
    explore_scenario_obs(
        scenario,
        threads,
        registry,
        ObsConfig::off(),
        &clock,
        1,
        &mut events,
    )
}

/// Explores one scenario, collecting profiling and trace events per
/// `obs`. Trace events land in `events` on the `pid` process track,
/// timestamped against the shared `clock`.
pub fn explore_scenario_obs(
    scenario: &Scenario,
    threads: usize,
    registry: &AdversaryRegistry,
    obs: ObsConfig,
    clock: &TraceClock,
    pid: u32,
    events: &mut Vec<ChromeEvent>,
) -> ExploreRecord {
    let started = Instant::now();
    let mut record = ExploreRecord {
        scenario: scenario.name.clone(),
        family: scenario.topology.family_name().to_string(),
        adversary: scenario.adversary.clone(),
        protocol: scenario.protocol.name().to_string(),
        n: 0,
        f: scenario.f,
        faulty: Vec::new(),
        premise: false,
        variants: 0,
        states: 0,
        expanded: 0,
        decided: 0,
        quiescent_undecided: 0,
        truncated: 0,
        violating: 0,
        decided_values: Vec::new(),
        complete: false,
        frontier_roots: 0,
        symmetry_group: 1,
        symmetry_classes: Vec::new(),
        symmetry_dropped_classes: 0,
        symmetry_dropped_arrangements: 0,
        symmetric_states: 0,
        transitions: 0,
        sleep_prunes: 0,
        state_bytes_estimate: 0,
        peak_memory_bytes: 0,
        min_violation_depth: None,
        violation: None,
        passed: false,
        error: None,
        wall_micros: 0,
        obs: None,
    };

    if obs.trace {
        events.push(ChromeEvent::ProcessName {
            pid,
            name: scenario.name.clone(),
        });
        events.push(ChromeEvent::ThreadName {
            pid,
            tid: 0,
            name: "serial".to_string(),
        });
    }
    let mut ctx = ObsCtx {
        config: obs,
        clock,
        pid,
        events,
    };

    // Topology generators assert their parameter contracts; contain any
    // panic as this scenario's error, like the sampling runner does.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore_configured(scenario, threads, registry, &mut record, &mut ctx)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => record.error = Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            record.error = Some(format!("configuration panic: {msg}"));
        }
    }
    record.wall_micros = started.elapsed().as_micros() as u64;
    record
}

fn explore_configured(
    scenario: &Scenario,
    threads: usize,
    registry: &AdversaryRegistry,
    record: &mut ExploreRecord,
    ctx: &mut ObsCtx<'_>,
) -> Result<(), String> {
    let setup = Setup::from_scenario(scenario, registry)?;
    record.n = setup.kg.n();
    record.faulty = setup.faulty.iter().map(|p| p.as_u32()).collect();
    record.premise = setup.premise;
    record.variants = setup.variants();

    // Protocol dispatch: one generic exploration, three drivers.
    match (setup.protocol, setup.explore_discovery) {
        (ProtocolSpec::BftCup, _) => {
            explore_with_driver(&BftDriver::new(&setup), scenario, threads, record, ctx)
        }
        (ProtocolSpec::StellarMinimal, true) => {
            explore_with_driver(&StackDriver::new(&setup), scenario, threads, record, ctx)
        }
        _ => explore_with_driver(&ScpDriver::new(&setup), scenario, threads, record, ctx),
    }
}

fn explore_with_driver<D: Driver>(
    driver: &D,
    scenario: &Scenario,
    threads: usize,
    record: &mut ExploreRecord,
    ctx: &mut ObsCtx<'_>,
) -> Result<(), String> {
    let setup = driver.setup();
    let variants = setup.variants();

    let engine = Engine::new(driver, scenario.explore);
    record.symmetry_group = engine.symmetry().group_order();
    record.symmetry_classes = engine.symmetry().class_sizes().to_vec();
    record.symmetry_dropped_classes = engine.symmetry().dropped_classes();
    record.symmetry_dropped_arrangements = engine.symmetry().dropped_arrangements();
    {
        let mut probe = driver.build_sim(0);
        probe.start();
        probe.drain_absorbed();
        record.state_bytes_estimate = probe.state_size_estimate();
    }
    let cap_error = |_: StateCapExceeded| {
        format!(
            "state cap exceeded ({} states); raise `max_states` or tighten \
             `max_steps`/`timer_budget`",
            scenario.explore.max_states
        )
    };

    // Serial prefix: the first `frontier_depth` branch decisions of every
    // variant, recorded into the shared ancestor map.
    let frontier_ts = ctx.span_start();
    let mut prefix: Visited = Visited::new();
    let mut prefix_stats = if ctx.config.profiling() {
        WorkerStats::profiled()
    } else {
        WorkerStats::default()
    };
    let mut roots: Vec<(u32, Vec<u32>)> = Vec::new();
    for variant in 0..variants {
        for path in engine
            .frontier(variant, &mut prefix, &mut prefix_stats)
            .map_err(cap_error)?
        {
            roots.push((variant, path));
        }
    }
    record.frontier_roots = roots.len() as u64;
    ctx.span_end(
        "frontier",
        frontier_ts,
        vec![("roots", ArgValue::U64(roots.len() as u64))],
    );

    // Sharded subtree exploration: worker `w` takes roots `w, w+T, …`,
    // each starting from a copy of the ancestor map. Merging by minimal
    // depth makes the union partition-independent.
    let workers = threads.min(roots.len()).max(1);
    let obs = ctx.config;
    let clock = ctx.clock;
    let pid = ctx.pid;
    let explore_ts = ctx.span_start();
    // Every census statistic is a pure function of the merged map —
    // filled by whichever search discipline runs below.
    let mut decided: BTreeSet<u64> = BTreeSet::new();
    let mut min_violation: Option<u32> = None;
    let (stats, buffers) = match scenario.explore.search {
        SearchMode::Ucs => {
            // The ancestor map converts into the compact fingerprint
            // table the workers clone and extend. Prefix states carry
            // their global minimal depths (the serial frontier is layered
            // min-depth-first), so the conversion preserves the min-depth
            // invariant the layered expansion relies on.
            let mut fp_prefix = FpTable::new();
            for (hash, entry) in &prefix {
                fp_prefix.record(
                    *hash,
                    FpEntry {
                        depth: entry.depth,
                        class: entry.class,
                        symmetric: entry.symmetric,
                    },
                );
            }
            let fp_prefix = fp_prefix;
            let (merged, stats, buffers) = std::thread::scope(
                |scope| -> Result<(FpTable, WorkerStats, Vec<TraceBuffer>), StateCapExceeded> {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let roots = &roots;
                            let engine = &engine;
                            let fp_prefix = &fp_prefix;
                            scope.spawn(
                                move || -> Result<
                                    (FpTable, WorkerStats, TraceBuffer),
                                    StateCapExceeded,
                                > {
                                    let mut visited = fp_prefix.clone();
                                    let mut stats = if obs.profiling() {
                                        WorkerStats::profiled()
                                    } else {
                                        WorkerStats::default()
                                    };
                                    let mut buf = if obs.trace {
                                        TraceBuffer::enabled()
                                    } else {
                                        TraceBuffer::disabled()
                                    };
                                    let tid = w as u32 + 1;
                                    scup_obs::obs_event!(
                                        buf,
                                        ChromeEvent::ThreadName {
                                            pid,
                                            tid,
                                            name: format!("worker {w}"),
                                        }
                                    );
                                    // All of this worker's roots seed one
                                    // layered expansion: they share a single
                                    // depth, so one frontier keeps the whole
                                    // stride in global depth order.
                                    let my_roots: Vec<(u32, Vec<u32>)> = roots
                                        .iter()
                                        .skip(w)
                                        .step_by(workers)
                                        .cloned()
                                        .collect();
                                    let span_ts = clock.now_us();
                                    let before = Phase::ALL.map(|p| stats.profile.nanos(p));
                                    engine.ucs(&my_roots, &mut visited, &mut stats)?;
                                    if buf.is_enabled() {
                                        push_phase_spans(
                                            &mut buf,
                                            &stats,
                                            before,
                                            span_ts,
                                            clock,
                                            pid,
                                            tid,
                                            format!("ucs ({} roots)", my_roots.len()),
                                            "ucs",
                                            vec![
                                                ("roots", ArgValue::U64(my_roots.len() as u64)),
                                                ("transitions", ArgValue::U64(stats.transitions)),
                                            ],
                                        );
                                        buf.push(ChromeEvent::Counter {
                                            name: format!("visited (worker {w})"),
                                            ts: clock.now_us(),
                                            pid,
                                            series: vec![("states", visited.len() as u64)],
                                        });
                                    }
                                    stats.visited_peak =
                                        (visited.len() as u64, visited.capacity() as u64);
                                    Ok((visited, stats, buf))
                                },
                            )
                        })
                        .collect();
                    let mut merged = fp_prefix.clone();
                    let mut stats = prefix_stats;
                    let mut buffers = Vec::new();
                    for handle in handles {
                        let (visited, worker_stats, buf) =
                            handle.join().expect("explore worker panicked")?;
                        merged.merge(&visited);
                        stats.absorb(worker_stats);
                        buffers.push(buf);
                    }
                    // The per-worker checks are early aborts; this is the
                    // actual valve, on the (partition-independent) union.
                    if merged.len() as u64 > scenario.explore.max_states {
                        return Err(StateCapExceeded);
                    }
                    Ok((merged, stats, buffers))
                },
            )
            .map_err(cap_error)?;
            ctx.span_end(
                "explore+merge",
                explore_ts,
                vec![("states", ArgValue::U64(merged.len() as u64))],
            );
            if ctx.config.profile {
                record.obs = Some(ExploreObs {
                    phases: ExploreObs::phase_rows(&stats.profile),
                    reexpansions: stats.reexpansions,
                    visited_len: merged.len() as u64,
                    visited_capacity: merged.capacity() as u64,
                    worker_visited_peak: stats.visited_peak.0,
                    depth_samples: stats.depth_samples.clone(),
                });
            }
            for (_, entry) in merged.iter() {
                tally(record, &mut decided, &mut min_violation, &entry);
            }
            // Flat-table memory: 32 bytes per slot (capacity is a pure
            // function of the state count), plus the live frontier-layer
            // snapshots, approximated by one state estimate per state.
            record.peak_memory_bytes = record.states * record.state_bytes_estimate
                + merged.capacity() as u64 * FpTable::SLOT_BYTES;
            (stats, buffers)
        }
        SearchMode::Dfs => {
            let (merged, stats, buffers) = std::thread::scope(
                |scope| -> Result<(Visited, WorkerStats, Vec<TraceBuffer>), StateCapExceeded> {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let roots = &roots;
                            let engine = &engine;
                            let prefix = &prefix;
                            scope.spawn(
                                move || -> Result<
                                    (Visited, WorkerStats, TraceBuffer),
                                    StateCapExceeded,
                                > {
                                    let mut visited = prefix.clone();
                                    let mut stats = if obs.profiling() {
                                        WorkerStats::profiled()
                                    } else {
                                        WorkerStats::default()
                                    };
                                    let mut buf = if obs.trace {
                                        TraceBuffer::enabled()
                                    } else {
                                        TraceBuffer::disabled()
                                    };
                                    let tid = w as u32 + 1;
                                    scup_obs::obs_event!(
                                        buf,
                                        ChromeEvent::ThreadName {
                                            pid,
                                            tid,
                                            name: format!("worker {w}"),
                                        }
                                    );
                                    for (i, (variant, path)) in
                                        roots.iter().enumerate().skip(w).step_by(workers)
                                    {
                                        let root_ts = clock.now_us();
                                        let before = Phase::ALL.map(|p| stats.profile.nanos(p));
                                        engine.dfs(*variant, path, &mut visited, &mut stats)?;
                                        if buf.is_enabled() {
                                            push_phase_spans(
                                                &mut buf,
                                                &stats,
                                                before,
                                                root_ts,
                                                clock,
                                                pid,
                                                tid,
                                                format!("root {i} (variant {variant})"),
                                                "dfs",
                                                vec![
                                                    ("variant", ArgValue::U64(*variant as u64)),
                                                    (
                                                        "transitions_so_far",
                                                        ArgValue::U64(stats.transitions),
                                                    ),
                                                ],
                                            );
                                            buf.push(ChromeEvent::Counter {
                                                name: format!("visited (worker {w})"),
                                                ts: clock.now_us(),
                                                pid,
                                                series: vec![("states", visited.len() as u64)],
                                            });
                                        }
                                    }
                                    stats.visited_peak =
                                        (visited.len() as u64, visited.capacity() as u64);
                                    Ok((visited, stats, buf))
                                },
                            )
                        })
                        .collect();
                    let mut merged = prefix.clone();
                    let mut stats = prefix_stats;
                    let mut buffers = Vec::new();
                    for handle in handles {
                        let (visited, worker_stats, buf) =
                            handle.join().expect("explore worker panicked")?;
                        merge_visited(&mut merged, visited);
                        stats.absorb(worker_stats);
                        buffers.push(buf);
                    }
                    // The per-worker checks are early aborts; this is the
                    // actual valve. A worker map is a subset of the union,
                    // so whether the scenario errors depends only on the
                    // (partition-independent) union size — never on the
                    // worker count.
                    if merged.len() as u64 > scenario.explore.max_states {
                        return Err(StateCapExceeded);
                    }
                    Ok((merged, stats, buffers))
                },
            )
            .map_err(cap_error)?;
            ctx.span_end(
                "explore+merge",
                explore_ts,
                vec![("states", ArgValue::U64(merged.len() as u64))],
            );
            if ctx.config.profile {
                record.obs = Some(ExploreObs {
                    phases: ExploreObs::phase_rows(&stats.profile),
                    reexpansions: stats.reexpansions,
                    visited_len: merged.len() as u64,
                    visited_capacity: merged.capacity() as u64,
                    worker_visited_peak: stats.visited_peak.0,
                    depth_samples: stats.depth_samples.clone(),
                });
            }
            for entry in merged.values() {
                tally(
                    record,
                    &mut decided,
                    &mut min_violation,
                    &FpEntry {
                        depth: entry.depth,
                        class: entry.class,
                        symmetric: entry.symmetric,
                    },
                );
            }
            // Visited-entry overhead: hash key + depth/class/flag + cover
            // spine.
            const VISITED_ENTRY_BYTES: u64 = 96;
            record.peak_memory_bytes =
                record.states * (record.state_bytes_estimate + VISITED_ENTRY_BYTES);
            (stats, buffers)
        }
    };
    for buf in buffers {
        ctx.events.extend(buf.into_events());
    }
    record.transitions = stats.transitions;
    record.sleep_prunes = stats.sleep_prunes;
    record.decided_values = decided.into_iter().collect();
    record.complete = record.truncated == 0;
    record.min_violation_depth = min_violation;

    if let Some(d_star) = min_violation {
        let cex_ts = ctx.span_start();
        let (variant, path) = engine
            .find_cex(variants, d_star)
            .expect("a violating state at depth d* is reachable by construction");
        record.violation = Some(render_cex(
            driver,
            &engine,
            variant,
            &path,
            &scenario.name,
            ctx.config.forensics,
        ));
        ctx.span_end(
            "find_cex",
            cex_ts,
            vec![("depth", ArgValue::U64(d_star as u64))],
        );
    }

    record.passed = if scenario.explore.expect_violation {
        record.violation.is_some()
    } else {
        match scenario.oracle {
            OracleMode::Require => record.violating == 0,
            OracleMode::Conditional => !record.premise || record.violating == 0,
            OracleMode::Observe => true,
        }
    };
    Ok(())
}

/// Accumulates one visited entry into the record's census. The census is
/// a commutative fold over `(depth, class, symmetric)` — identical for
/// either visited representation and any iteration order.
fn tally(
    record: &mut ExploreRecord,
    decided: &mut BTreeSet<u64>,
    min_violation: &mut Option<u32>,
    entry: &FpEntry,
) {
    record.states += 1;
    if entry.symmetric {
        record.symmetric_states += 1;
    }
    match entry.class {
        Class::Expanded => record.expanded += 1,
        Class::Truncated => record.truncated += 1,
        Class::QuiescentUndecided => record.quiescent_undecided += 1,
        Class::Decided(v) => {
            record.decided += 1;
            decided.insert(v);
        }
        Class::Violating => {
            record.violating += 1;
            *min_violation = Some(min_violation.map_or(entry.depth, |d| d.min(entry.depth)));
        }
    }
}

/// Emits one span covering a traversal chunk (a DFS root or a worker's
/// whole ucs frontier) and, nested within it, one child span per phase
/// whose attributed time grew during the chunk, laid out sequentially
/// from the chunk's start (the real interleaving is sub-microsecond; the
/// sequential layout shows the proportions, which is what the viewer is
/// for).
#[allow(clippy::too_many_arguments)]
fn push_phase_spans(
    buf: &mut TraceBuffer,
    stats: &WorkerStats,
    before: [u64; Phase::COUNT],
    span_ts: u64,
    clock: &TraceClock,
    pid: u32,
    tid: u32,
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    let end = clock.now_us();
    buf.push(ChromeEvent::Complete {
        name,
        cat,
        ts: span_ts,
        dur: end.saturating_sub(span_ts),
        pid,
        tid,
        args,
    });
    let mut cursor = span_ts;
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let dur = stats.profile.nanos(*phase).saturating_sub(before[i]) / 1_000;
        if dur == 0 {
            continue;
        }
        buf.push(ChromeEvent::Complete {
            name: phase.name().to_string(),
            cat: "phase",
            ts: cursor,
            dur,
            pid,
            tid,
            args: Vec::new(),
        });
        cursor += dur;
    }
}

/// Replays the counterexample path with tracing on and renders it. With
/// `forensics`, the replay also records the causal event graph and
/// per-process decision provenance, and the report gains the violation's
/// causal cone and provenance chains.
fn render_cex<D: Driver>(
    driver: &D,
    engine: &Engine<'_, D>,
    variant: u32,
    path: &[u32],
    scenario: &str,
    forensics: bool,
) -> CexReport {
    let setup = driver.setup();
    let mut sim = driver.build_sim(variant);
    sim.enable_trace();
    if forensics {
        sim.enable_causal();
        driver.enable_provenance(&mut sim);
    }
    engine.replay_into(&mut sim, path);
    let decisions = driver.decisions(&sim);

    let schedule = sim
        .trace()
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Delivered {
                from, to, payload, ..
            } => format!("deliver {from}->{to}: {payload}"),
            TraceEvent::Timer { process, tag, .. } => format!("timer {process} tag {tag}"),
            TraceEvent::Sent { .. }
            | TraceEvent::Dropped { .. }
            | TraceEvent::Crashed { .. }
            | TraceEvent::Recovered { .. }
            | TraceEvent::Joined { .. }
            | TraceEvent::Left { .. } => {
                unreachable!("ExploreSim only records deliveries and timers")
            }
        })
        .collect();

    let invariants = oracle::evaluate(
        &setup.kg,
        setup.f,
        &setup.faulty,
        &setup.inputs,
        &decisions,
        setup.adversary,
    );
    let violations: Vec<String> = invariants
        .violations
        .into_iter()
        // Termination is a liveness property; mid-schedule states are
        // legitimately undecided.
        .filter(|v| !v.starts_with("termination"))
        .collect();

    let forensic = forensics.then(|| {
        let provenance = driver.provenance(&sim);
        ForensicReport::from_parts(
            scenario,
            variant as u64,
            &violations,
            sim.causal(),
            &provenance,
            &decisions,
        )
    });

    CexReport {
        depth: path.len() as u32,
        variant,
        violations,
        schedule,
        decisions,
        forensics: forensic,
    }
}

/// Human-readable summary of an explore report (mirrors the sampling
/// CLI's rollup).
pub fn summary(report: &ExploreReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let passed = report.records.iter().filter(|r| r.passed).count();
    let _ = writeln!(
        out,
        "campaign `{}` (explore): {} scenarios on {} threads in {:.2}s — {} passed, {} failed",
        report.name,
        report.records.len(),
        report.threads,
        report.wall_micros as f64 / 1e6,
        passed,
        report.records.len() - passed,
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>9} {:>9} {:>7} {:>6} {:>9} {:>6}",
        "scenario", "states", "decided", "quiet", "trunc", "violating", "pass"
    );
    for r in &report.records {
        let _ = writeln!(
            out,
            "  {:<26} {:>9} {:>9} {:>7} {:>6} {:>9} {:>6}",
            r.scenario,
            r.states,
            r.decided,
            r.quiescent_undecided,
            r.truncated,
            r.violating,
            if r.passed { "ok" } else { "FAIL" },
        );
        if r.error.is_none() {
            let classes = r
                .symmetry_classes
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("+");
            let _ = writeln!(
                out,
                "    reductions: symmetry group {} (classes {}), {} symmetric states, \
                 {} sleep prunes / {} transitions; mem ≈ {:.1} MiB ({} B/state × {} states)",
                r.symmetry_group,
                if classes.is_empty() {
                    "-".to_string()
                } else {
                    classes
                },
                r.symmetric_states,
                r.sleep_prunes,
                r.transitions,
                r.peak_memory_bytes as f64 / (1024.0 * 1024.0),
                r.state_bytes_estimate,
                r.states,
            );
            if r.symmetry_dropped_classes > 0 {
                let _ = writeln!(
                    out,
                    "    symmetry cap: {} candidate class(es) dropped \
                     ({} arrangements left unexplored)",
                    r.symmetry_dropped_classes, r.symmetry_dropped_arrangements,
                );
            }
        }
        if let Some(e) = &r.error {
            let _ = writeln!(out, "    error: {e}");
        }
        if let Some(cex) = &r.violation {
            let _ = writeln!(
                out,
                "    minimal counterexample (depth {}, variant {}): {}",
                cex.depth,
                cex.variant,
                cex.violations.join("; ")
            );
            for line in &cex.schedule {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    out
}
