//! Scenario → explorable system: resolves a harness [`Scenario`] into the
//! concrete graph, faulty set, slice assignment and actor roster the
//! explorer branches over.
//!
//! Exploration quantifies over *SCP schedules*: the knowledge-increase
//! phase (Algorithm 3) runs once, deterministically in the scenario's
//! `seed_base`, exactly as in the sampled pipeline — its output (each
//! correct process's sink detection, hence its Algorithm-2 slices) is part
//! of the system under exploration, not a branch point. The negative
//! pipeline builds slices locally and needs no pre-phase at all.

use scup_fbqs::SliceFamily;
use scup_graph::{kosr, sink, KnowledgeGraph, ProcessId, ProcessSet};
use scup_harness::scenario::{ProtocolSpec, Scenario};
use scup_harness::{topology, AdversaryKind, AdversaryRegistry};
use scup_scp::node::EquivocatingScpNode;
use scup_scp::{ScpConfig, ScpMsg, ScpNode, Value};
use scup_sim::adversary::{CrashActor, EchoActor, SilentActor};
use scup_sim::ExploreSim;
use stellar_cup::build_slices::build_slices;
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::sink_detector::GetSinkMode;
use stellar_cup::theorems;

/// The resolved, concrete system one scenario explores.
pub struct Setup {
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// Fault threshold.
    pub f: usize,
    /// The faulty processes.
    pub faulty: ProcessSet,
    /// Per-process inputs.
    pub inputs: Vec<Value>,
    /// Per-process slice families (empty for faulty processes).
    pub slices: Vec<SliceFamily>,
    /// The Byzantine behaviour.
    pub adversary: AdversaryKind,
    /// The paper's structural premise (Byzantine-safe `k`-OSR with enough
    /// correct sink members) — computed once; it is schedule-independent.
    pub premise: bool,
    /// Timer budget per process (see
    /// [`ExploreSpec`](scup_harness::scenario::ExploreSpec)).
    pub timer_budget: u32,
}

impl Setup {
    /// Resolves a scenario.
    ///
    /// # Errors
    ///
    /// Returns a description when the scenario cannot be explored (unknown
    /// adversary, unsatisfiable fault placement, or a protocol without
    /// exploration support).
    pub fn from_scenario(
        scenario: &Scenario,
        registry: &AdversaryRegistry,
    ) -> Result<Self, String> {
        let adversary = registry.resolve(&scenario.adversary)?;
        let seed = scenario.seed_base;
        let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
        let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed)?;
        let inputs: Vec<Value> = scenario.resolved_inputs(kg.n());

        let slices = match scenario.protocol {
            ProtocolSpec::StellarMinimal => {
                let config = EndToEndConfig {
                    seed,
                    gst: scenario.network.gst,
                    delta: scenario.network.delta,
                    get_sink_mode: GetSinkMode::Direct,
                    adversary: adversary.to_scp(),
                    inputs: None,
                    max_ticks: scenario.network.max_ticks,
                };
                let (detections, _) =
                    consensus::run_sink_detection(&kg, scenario.f, &faulty, &config);
                detections
                    .iter()
                    .map(|d| match d {
                        Some(d) => build_slices(d, scenario.f),
                        None => SliceFamily::empty(),
                    })
                    .collect()
            }
            ProtocolSpec::StellarLocal(strategy) => kg
                .processes()
                .map(|i| strategy.build(kg.pd(i), scenario.f))
                .collect(),
            ProtocolSpec::BftCup => {
                return Err(format!(
                    "scenario `{}`: explore mode drives the SCP phase; protocol `bft-cup` \
                     has no exploration support — run this scenario under the sampling \
                     runner (`mode = \"sample\"`, the default) or switch it to \
                     stellar-minimal / a stellar-local variant",
                    scenario.name
                ))
            }
        };

        let all = kg.graph().vertex_set();
        let correct = all.difference(&faulty);
        let premise = kosr::satisfies_theorem1(kg.graph(), scenario.f, &faulty)
            && sink::unique_sink(kg.graph()).is_some_and(|v_sink| {
                theorems::sink_has_enough_correct(&v_sink, &correct, scenario.f)
            });

        Ok(Setup {
            kg,
            f: scenario.f,
            faulty,
            inputs,
            slices,
            adversary,
            premise,
            timer_budget: scenario.explore.timer_budget,
        })
    }

    /// How many adversary variants the explorer enumerates: the
    /// equivocator chooses *which* peers receive which conflicting value —
    /// both split parities are explored. `ForgedSlice` plays one value
    /// consistently (its lie is the slice family), so its split rotation
    /// is behaviourally identical and enumerating it would double-count
    /// every state; value-preserving behaviours have no free choice
    /// beyond the schedule.
    pub fn variants(&self) -> u32 {
        match self.adversary {
            AdversaryKind::Equivocate if !self.faulty.is_empty() => 2,
            _ => 1,
        }
    }

    /// Builds the (unstarted) choice-driven simulation for one adversary
    /// variant. Mirrors the sampled pipeline's actor roster
    /// (`consensus::run_scp_with_slices`), with the variant rotating the
    /// equivocators' victim split.
    pub fn build_sim(&self, variant: u32) -> ExploreSim<ScpMsg> {
        let mut sim = ExploreSim::new(self.kg.clone(), self.timer_budget);
        for i in self.kg.processes() {
            if self.faulty.contains(i) {
                match self.adversary {
                    AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                    AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                    AdversaryKind::Equivocate => sim.add_actor(Box::new(
                        EquivocatingScpNode::new(
                            (u64::MAX - 1, u64::MAX),
                            SliceFamily::explicit([ProcessSet::singleton(i)]),
                        )
                        .with_split(variant as usize),
                    )),
                    AdversaryKind::ForgedSlice => sim.add_actor(Box::new(
                        EquivocatingScpNode::new(
                            (u64::MAX - 2, u64::MAX - 2),
                            SliceFamily::explicit([ProcessSet::singleton(i)]),
                        )
                        .with_split(variant as usize),
                    )),
                    AdversaryKind::Crash { after } => {
                        let config =
                            ScpConfig::new(self.slices[i.index()].clone(), self.inputs[i.index()]);
                        sim.add_actor(Box::new(CrashActor::new(ScpNode::new(config), after)))
                    }
                };
            } else {
                let config = ScpConfig::new(self.slices[i.index()].clone(), self.inputs[i.index()]);
                sim.add_actor(Box::new(ScpNode::new(config)));
            }
        }
        sim
    }

    /// The per-process decisions in the current state (`None` for faulty
    /// or undecided processes).
    pub fn decisions(&self, sim: &ExploreSim<ScpMsg>) -> Vec<Option<Value>> {
        self.kg
            .processes()
            .map(|i| {
                if self.faulty.contains(i) {
                    None
                } else {
                    sim.actor_as::<ScpNode>(i).and_then(ScpNode::externalized)
                }
            })
            .collect()
    }

    /// The correct processes.
    pub fn correct(&self) -> ProcessSet {
        self.kg.graph().vertex_set().difference(&self.faulty)
    }

    /// Cheap per-state safety check: `true` when the decisions so far
    /// already violate agreement, or (for value-preserving adversaries)
    /// validity. Both violations are stable — externalized values never
    /// change — so flagging them at the first state they appear in yields
    /// the minimal-depth witness.
    pub fn violates(&self, decisions: &[Option<Value>]) -> bool {
        let crash = matches!(self.adversary, AdversaryKind::Crash { .. });
        let check_validity = self.adversary.preserves_validity();
        let mut agreed: Option<Value> = None;
        for i in self.correct().iter() {
            let Some(v) = decisions[i.index()] else {
                continue;
            };
            match agreed {
                None => agreed = Some(v),
                Some(prev) if prev != v => return true,
                Some(_) => {}
            }
            if check_validity {
                let proposed_ok = self.inputs.iter().enumerate().any(|(j, &input)| {
                    input == v && (crash || !self.faulty.contains(ProcessId::new(j as u32)))
                });
                if !proposed_ok {
                    return true;
                }
            }
        }
        false
    }
}
