//! Scenario → explorable system: resolves a harness [`Scenario`] into the
//! concrete graph, faulty set, slice assignment and actor roster the
//! explorer branches over — and the [`Driver`] that tells the (protocol-
//! generic) engine how to build, read and attribute one protocol's
//! simulations.
//!
//! Three drivers cover the stack:
//!
//! - [`ScpDriver`] — the PR 3 semantics: the knowledge-increase phase
//!   (Algorithm 3) runs once, deterministically in the scenario's
//!   `seed_base`, exactly as in the sampled pipeline — its output (each
//!   correct process's sink detection, hence its Algorithm-2 slices) is
//!   part of the system under exploration, not a branch point. The
//!   negative pipeline builds slices locally and needs no pre-phase at
//!   all.
//! - [`StackDriver`] (`explore_discovery = true`, `stellar-minimal`
//!   only) — the full stack: every process runs discovery, sink
//!   detection and SCP *inside* the explored schedule
//!   ([`stellar_cup::explore_stack::StackActor`]), so knowledge-increase
//!   message orderings are themselves choice points.
//! - [`BftDriver`] — the BFT-CUP baseline: `SINK` discovery plus the
//!   sink-internal quorum protocol and decision dissemination
//!   ([`scup_cup::bftcup`]), all explorable.

use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg, EquivocatingLeader};
use scup_fbqs::SliceFamily;
use scup_graph::{kosr, sink, KnowledgeGraph, ProcessId, ProcessSet};
use scup_harness::scenario::{ProtocolSpec, Scenario};
use scup_harness::{topology, AdversaryKind, AdversaryRegistry};
use scup_obs::causal::ProvenanceLog;
use scup_scp::node::EquivocatingScpNode;
use scup_scp::{ScpConfig, ScpMsg, ScpNode, Value};
use scup_sim::adversary::{CrashActor, EchoActor, SilentActor};
use scup_sim::{ExploreSim, SimMessage};
use stellar_cup::build_slices::build_slices;
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::explore_stack::{StackActor, StackMsg};
use stellar_cup::sink_detector::GetSinkMode;
use stellar_cup::theorems;

/// The resolved, concrete system one scenario explores.
pub struct Setup {
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// Fault threshold.
    pub f: usize,
    /// The faulty processes.
    pub faulty: ProcessSet,
    /// Per-process inputs.
    pub inputs: Vec<Value>,
    /// Per-process slice families (empty for faulty processes; empty
    /// *altogether* for protocols that build no pre-computed slices —
    /// BFT-CUP, and the full stack under `explore_discovery`).
    pub slices: Vec<SliceFamily>,
    /// The Byzantine behaviour.
    pub adversary: AdversaryKind,
    /// The protocol under exploration.
    pub protocol: ProtocolSpec,
    /// Whether the knowledge-increase phase is explored in-schedule
    /// (`stellar-minimal` with `explore_discovery = true`).
    pub explore_discovery: bool,
    /// The paper's structural premise (Byzantine-safe `k`-OSR with enough
    /// correct sink members) — computed once; it is schedule-independent.
    pub premise: bool,
    /// Timer budget per process (see
    /// [`ExploreSpec`](scup_harness::scenario::ExploreSpec)).
    pub timer_budget: u32,
    /// Sink membership resolved ahead of exploration (`bft-cup` with
    /// `preresolve_sink = true`): every actor starts with this member set
    /// and skips in-schedule discovery.
    pub preset_sink: Option<ProcessSet>,
    /// View timeout handed to explored BFT-CUP actors (see
    /// [`ExploreSpec`](scup_harness::scenario::ExploreSpec)). The untimed
    /// semantics ignores timer delays (a pending timer is just a
    /// schedulable choice), so any positive value is behaviorally
    /// equivalent — the knob exists so a campaign can pin the view-change
    /// cadence it also samples with.
    pub bft_view_timeout: u64,
}

impl Setup {
    /// Resolves a scenario.
    ///
    /// # Errors
    ///
    /// Returns a description when the scenario cannot be explored (unknown
    /// adversary, unsatisfiable fault placement, or a knob combination
    /// without exploration support).
    pub fn from_scenario(
        scenario: &Scenario,
        registry: &AdversaryRegistry,
    ) -> Result<Self, String> {
        let adversary = registry.resolve(&scenario.adversary)?;
        let seed = scenario.seed_base;
        let explore_discovery = scenario.explore.explore_discovery;
        let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
        let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed)?;
        let inputs: Vec<Value> = scenario.resolved_inputs(kg.n());

        // Programmatic `Scenario` construction bypasses the campaign
        // parser, so the support check runs here too — same shared
        // validator, same message (classification via the resolved kind).
        let value_injecting = !matches!(
            adversary,
            AdversaryKind::Silent | AdversaryKind::Echo | AdversaryKind::Crash { .. }
        );
        if let Some(err) = scenario.explore_discovery_unsupported(value_injecting) {
            return Err(err);
        }
        if let Some(err) = scenario.preresolve_sink_unsupported() {
            return Err(err);
        }
        if let Some(err) = scenario.sleep_sets_unsupported() {
            return Err(err);
        }
        let preset_sink = if scenario.explore.preresolve_sink {
            match sink::unique_sink(kg.graph()) {
                Some(v) => Some(v),
                None => {
                    return Err(format!(
                        "scenario `{}`: `preresolve_sink = true` needs a unique sink \
                         to fix membership to, and this graph has none",
                        scenario.name
                    ));
                }
            }
        } else {
            None
        };

        let slices = match scenario.protocol {
            ProtocolSpec::StellarMinimal if explore_discovery => Vec::new(),
            ProtocolSpec::StellarMinimal => {
                let config = EndToEndConfig {
                    seed,
                    gst: scenario.network.gst,
                    delta: scenario.network.delta,
                    get_sink_mode: GetSinkMode::Direct,
                    adversary: adversary.to_scp(),
                    inputs: None,
                    max_ticks: scenario.network.max_ticks,
                    trace: false,
                    // The explorer quantifies over schedules, not faults;
                    // timed fault plans have no untimed counterpart.
                    faults: scup_sim::FaultPlan::default(),
                    retransmit: scup_sim::RetransmitConfig::disabled(),
                    churn: scup_sim::ChurnPlan::default(),
                    forensics: false,
                };
                let (detections, _) =
                    consensus::run_sink_detection(&kg, scenario.f, &faulty, &config);
                detections
                    .iter()
                    .map(|d| match d {
                        Some(d) => build_slices(d, scenario.f),
                        None => SliceFamily::empty(),
                    })
                    .collect()
            }
            ProtocolSpec::StellarLocal(strategy) => kg
                .processes()
                .map(|i| strategy.build(kg.pd(i), scenario.f))
                .collect(),
            ProtocolSpec::BftCup => Vec::new(),
        };

        let all = kg.graph().vertex_set();
        let correct = all.difference(&faulty);
        let premise = kosr::satisfies_theorem1(kg.graph(), scenario.f, &faulty)
            && sink::unique_sink(kg.graph()).is_some_and(|v_sink| {
                theorems::sink_has_enough_correct(&v_sink, &correct, scenario.f)
            });

        Ok(Setup {
            kg,
            f: scenario.f,
            faulty,
            inputs,
            slices,
            adversary,
            protocol: scenario.protocol,
            explore_discovery,
            premise,
            timer_budget: scenario.explore.timer_budget,
            preset_sink,
            bft_view_timeout: scenario.explore.bft_view_timeout,
        })
    }

    /// How many adversary variants the explorer enumerates: the
    /// equivocator chooses *which* peers receive which conflicting value —
    /// both split parities are explored (for SCP's equivocating node and
    /// for BFT-CUP's equivocating leader alike). Under SCP, `ForgedSlice`
    /// plays one value consistently (its lie is the slice family), so its
    /// split rotation is behaviourally identical and enumerating it would
    /// double-count every state — but BFT-CUP has no slices to forge and
    /// maps `ForgedSlice` onto the equivocating leader too
    /// ([`BftDriver::build_sim`]), where the split is a real choice.
    /// Value-preserving behaviours have no free choice beyond the
    /// schedule.
    pub fn variants(&self) -> u32 {
        if self.faulty.is_empty() {
            return 1;
        }
        match (self.adversary, self.protocol) {
            (AdversaryKind::Equivocate, _) => 2,
            (AdversaryKind::ForgedSlice, ProtocolSpec::BftCup) => 2,
            _ => 1,
        }
    }

    /// The correct processes.
    pub fn correct(&self) -> ProcessSet {
        self.kg.graph().vertex_set().difference(&self.faulty)
    }

    /// Cheap per-state safety check: `true` when the decisions so far
    /// already violate agreement, or (for value-preserving adversaries)
    /// validity. Both violations are stable — decided values never
    /// change — so flagging them at the first state they appear in yields
    /// the minimal-depth witness.
    pub fn violates(&self, decisions: &[Option<Value>]) -> bool {
        let crash = matches!(self.adversary, AdversaryKind::Crash { .. });
        let check_validity = self.adversary.preserves_validity();
        let mut agreed: Option<Value> = None;
        for i in self.correct().iter() {
            let Some(v) = decisions[i.index()] else {
                continue;
            };
            match agreed {
                None => agreed = Some(v),
                Some(prev) if prev != v => return true,
                Some(_) => {}
            }
            if check_validity {
                let proposed_ok = self.inputs.iter().enumerate().any(|(j, &input)| {
                    input == v && (crash || !self.faulty.contains(ProcessId::new(j as u32)))
                });
                if !proposed_ok {
                    return true;
                }
            }
        }
        false
    }
}

/// The protocol-specific surface of one exploration: how to build a
/// simulation for an adversary variant, how to read the per-process
/// decisions out of a state, and who is accountable for a delivered
/// message (the origin the eager-inert reduction's correct-origin gate
/// runs on).
pub trait Driver: Sync {
    /// The wire type of the explored protocol.
    type Msg: SimMessage;

    /// The resolved system.
    fn setup(&self) -> &Setup;

    /// Builds the (unstarted) choice-driven simulation for one adversary
    /// variant.
    fn build_sim(&self, variant: u32) -> ExploreSim<Self::Msg>;

    /// The per-process decisions in the current state (`None` for faulty
    /// or undecided processes).
    fn decisions(&self, sim: &ExploreSim<Self::Msg>) -> Vec<Option<Value>>;

    /// The accountable origin of a delivery: the envelope's signed origin
    /// for relayed SCP traffic, the channel sender for the point-to-point
    /// CUP protocols.
    fn msg_origin(&self, from: ProcessId, msg: &Self::Msg) -> ProcessId;

    /// Whether the eager-inert/sleep-set reductions may treat this
    /// delivery as inert given whether its accountable origin is correct.
    ///
    /// The default demands a correct origin — the conservative rule SCP
    /// needs (a Byzantine origin could re-announce different slices,
    /// making the registry write order observable). Protocols whose inert
    /// deliveries are *sender-agnostic static replies* (BFT-CUP's
    /// `Discover` / post-decision `AskDecision`) may accept any origin:
    /// the receiver's reaction is a pure function of its own state, so
    /// the delivery commutes no matter who sent it.
    fn inert_origin_ok(&self, origin_correct: bool, msg: &Self::Msg) -> bool {
        let _ = msg;
        origin_correct
    }

    /// Arms decision provenance on every correct actor of an (unstarted)
    /// simulation. Only the counterexample replay calls this — never the
    /// exploration itself, so provenance stays off the fingerprinted
    /// state space. The default is a no-op for protocols without capture.
    fn enable_provenance(&self, sim: &mut ExploreSim<Self::Msg>) {
        let _ = sim;
    }

    /// The per-process provenance logs after a replay (disabled logs
    /// where the protocol or the process records none).
    fn provenance(&self, sim: &ExploreSim<Self::Msg>) -> Vec<ProvenanceLog> {
        let _ = sim;
        vec![ProvenanceLog::default(); self.setup().kg.n()]
    }
}

/// The SCP-phase driver (slices fixed before exploration); see the
/// [module docs](self).
pub struct ScpDriver<'a> {
    setup: &'a Setup,
}

impl<'a> ScpDriver<'a> {
    /// Wraps a resolved setup (which must carry pre-computed slices).
    pub fn new(setup: &'a Setup) -> Self {
        debug_assert_eq!(setup.slices.len(), setup.kg.n());
        ScpDriver { setup }
    }
}

impl Driver for ScpDriver<'_> {
    type Msg = ScpMsg;

    fn setup(&self) -> &Setup {
        self.setup
    }

    /// Mirrors the sampled pipeline's actor roster
    /// (`consensus::run_scp_with_slices`), with the variant rotating the
    /// equivocators' victim split.
    fn build_sim(&self, variant: u32) -> ExploreSim<ScpMsg> {
        let setup = self.setup;
        let mut sim = ExploreSim::new(setup.kg.clone(), setup.timer_budget);
        for i in setup.kg.processes() {
            if setup.faulty.contains(i) {
                match setup.adversary {
                    AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                    AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                    AdversaryKind::Equivocate => sim.add_actor(Box::new(
                        EquivocatingScpNode::new(
                            (u64::MAX - 1, u64::MAX),
                            SliceFamily::explicit([ProcessSet::singleton(i)]),
                        )
                        .with_split(variant as usize),
                    )),
                    AdversaryKind::ForgedSlice => sim.add_actor(Box::new(
                        EquivocatingScpNode::new(
                            (u64::MAX - 2, u64::MAX - 2),
                            SliceFamily::explicit([ProcessSet::singleton(i)]),
                        )
                        .with_split(variant as usize),
                    )),
                    AdversaryKind::Crash { after } => {
                        let config = ScpConfig::new(
                            setup.slices[i.index()].clone(),
                            setup.inputs[i.index()],
                        );
                        sim.add_actor(Box::new(CrashActor::new(ScpNode::new(config), after)))
                    }
                };
            } else {
                let config =
                    ScpConfig::new(setup.slices[i.index()].clone(), setup.inputs[i.index()]);
                sim.add_actor(Box::new(ScpNode::new(config)));
            }
        }
        sim
    }

    fn decisions(&self, sim: &ExploreSim<ScpMsg>) -> Vec<Option<Value>> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                if self.setup.faulty.contains(i) {
                    None
                } else {
                    sim.actor_as::<ScpNode>(i).and_then(ScpNode::externalized)
                }
            })
            .collect()
    }

    fn msg_origin(&self, _from: ProcessId, msg: &ScpMsg) -> ProcessId {
        msg.origin
    }

    fn enable_provenance(&self, sim: &mut ExploreSim<ScpMsg>) {
        for i in self.setup.kg.processes() {
            if let Some(node) = sim.actor_as_mut::<ScpNode>(i) {
                node.enable_provenance();
            }
        }
    }

    fn provenance(&self, sim: &ExploreSim<ScpMsg>) -> Vec<ProvenanceLog> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                sim.actor_as::<ScpNode>(i)
                    .map(|node| node.provenance().clone())
                    .unwrap_or_default()
            })
            .collect()
    }
}

/// The BFT-CUP driver: discovery, sink-internal quorum consensus and
/// decision dissemination, all inside the explored schedule.
pub struct BftDriver<'a> {
    setup: &'a Setup,
}

impl<'a> BftDriver<'a> {
    /// Wraps a resolved BFT-CUP setup.
    pub fn new(setup: &'a Setup) -> Self {
        BftDriver { setup }
    }
}

impl Driver for BftDriver<'_> {
    type Msg = BftMsg;

    fn setup(&self) -> &Setup {
        self.setup
    }

    /// Mirrors the sampling runner's roster (`protocol::execute` for
    /// `bft-cup`); the variant rotates the equivocating leader's victim
    /// split.
    fn build_sim(&self, variant: u32) -> ExploreSim<BftMsg> {
        let setup = self.setup;
        let mut sim = ExploreSim::new(setup.kg.clone(), setup.timer_budget);
        let config = BftConfig::new(setup.f, setup.bft_view_timeout);
        // With `preresolve_sink`, membership is fixed up front and SINK
        // discovery never enters the schedule (correct actors and the
        // equivocating leader alike).
        let bft = |i: ProcessId| {
            let actor = BftCupActor::new(
                setup.kg.pd(i).clone(),
                setup.inputs[i.index()],
                config.clone(),
            );
            match &setup.preset_sink {
                Some(m) => actor.with_members(m.clone()),
                None => actor,
            }
        };
        for i in setup.kg.processes() {
            if setup.faulty.contains(i) {
                match setup.adversary {
                    AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                    AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                    AdversaryKind::Crash { after } => {
                        sim.add_actor(Box::new(CrashActor::new(bft(i), after)))
                    }
                    // BFT-CUP has no slices to forge; both value-injecting
                    // kinds map to the equivocating leader.
                    AdversaryKind::Equivocate | AdversaryKind::ForgedSlice => {
                        let leader = EquivocatingLeader::new(
                            setup.kg.pd(i).clone(),
                            setup.f,
                            (u64::MAX - 1, u64::MAX),
                        )
                        .with_split(variant as usize);
                        let leader = match &setup.preset_sink {
                            Some(m) => leader.with_members(m.clone()),
                            None => leader,
                        };
                        sim.add_actor(Box::new(leader))
                    }
                };
            } else {
                sim.add_actor(Box::new(bft(i)));
            }
        }
        sim
    }

    fn decisions(&self, sim: &ExploreSim<BftMsg>) -> Vec<Option<Value>> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                if self.setup.faulty.contains(i) {
                    None
                } else {
                    sim.actor_as::<BftCupActor>(i)
                        .and_then(BftCupActor::decision)
                }
            })
            .collect()
    }

    /// BFT-CUP messages are point-to-point and unrelayed: the channel
    /// sender is the accountable origin.
    fn msg_origin(&self, from: ProcessId, _msg: &BftMsg) -> ProcessId {
        from
    }

    /// Every delivery BFT-CUP actors declare inert is a sender-agnostic
    /// static reply (`Discover` → static `PD`; post-decision
    /// `AskDecision` → the write-once decision), so a Byzantine sender
    /// changes nothing about the commutation argument.
    fn inert_origin_ok(&self, _origin_correct: bool, _msg: &BftMsg) -> bool {
        true
    }

    fn enable_provenance(&self, sim: &mut ExploreSim<BftMsg>) {
        for i in self.setup.kg.processes() {
            if let Some(actor) = sim.actor_as_mut::<BftCupActor>(i) {
                actor.enable_provenance();
            }
        }
    }

    fn provenance(&self, sim: &ExploreSim<BftMsg>) -> Vec<ProvenanceLog> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                sim.actor_as::<BftCupActor>(i)
                    .map(|actor| actor.provenance().clone())
                    .unwrap_or_default()
            })
            .collect()
    }
}

/// The full-stack driver (`explore_discovery = true`): discovery, sink
/// detection, Algorithm-2 slices and SCP all run inside the explored
/// schedule.
pub struct StackDriver<'a> {
    setup: &'a Setup,
}

impl<'a> StackDriver<'a> {
    /// Wraps a resolved full-stack setup.
    pub fn new(setup: &'a Setup) -> Self {
        StackDriver { setup }
    }
}

impl Driver for StackDriver<'_> {
    type Msg = StackMsg;

    fn setup(&self) -> &Setup {
        self.setup
    }

    fn build_sim(&self, _variant: u32) -> ExploreSim<StackMsg> {
        let setup = self.setup;
        let mut sim = ExploreSim::new(setup.kg.clone(), setup.timer_budget);
        for i in setup.kg.processes() {
            if setup.faulty.contains(i) {
                match setup.adversary {
                    AdversaryKind::Silent => sim.add_actor(Box::new(SilentActor::new())),
                    AdversaryKind::Echo => sim.add_actor(Box::new(EchoActor::new())),
                    AdversaryKind::Crash { after } => sim.add_actor(Box::new(CrashActor::new(
                        StackActor::new(setup.kg.pd(i).clone(), setup.f, setup.inputs[i.index()]),
                        after,
                    ))),
                    // Rejected by `Setup::from_scenario`.
                    AdversaryKind::Equivocate | AdversaryKind::ForgedSlice => {
                        unreachable!("value-injecting adversaries are rejected at setup time")
                    }
                };
            } else {
                sim.add_actor(Box::new(StackActor::new(
                    setup.kg.pd(i).clone(),
                    setup.f,
                    setup.inputs[i.index()],
                )));
            }
        }
        sim
    }

    fn decisions(&self, sim: &ExploreSim<StackMsg>) -> Vec<Option<Value>> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                if self.setup.faulty.contains(i) {
                    None
                } else {
                    sim.actor_as::<StackActor>(i)
                        .and_then(StackActor::externalized)
                }
            })
            .collect()
    }

    /// Discovery traffic is point-to-point (sender-accountable); embedded
    /// SCP envelopes carry their signed origin.
    fn msg_origin(&self, from: ProcessId, msg: &StackMsg) -> ProcessId {
        match msg {
            StackMsg::Sd(_) => from,
            StackMsg::Scp(m) => m.origin,
        }
    }

    /// Discovery-phase inert deliveries are sender-agnostic static
    /// replies; SCP envelopes keep the conservative correct-origin rule.
    fn inert_origin_ok(&self, origin_correct: bool, msg: &StackMsg) -> bool {
        match msg {
            StackMsg::Sd(_) => true,
            StackMsg::Scp(_) => origin_correct,
        }
    }

    fn enable_provenance(&self, sim: &mut ExploreSim<StackMsg>) {
        for i in self.setup.kg.processes() {
            if let Some(actor) = sim.actor_as_mut::<StackActor>(i) {
                actor.enable_provenance();
            }
        }
    }

    fn provenance(&self, sim: &ExploreSim<StackMsg>) -> Vec<ProvenanceLog> {
        self.setup
            .kg
            .processes()
            .map(|i| {
                sim.actor_as::<StackActor>(i)
                    .map(|actor| actor.provenance())
                    .unwrap_or_default()
            })
            .collect()
    }
}
