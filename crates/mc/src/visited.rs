//! The compact visited table behind the uniform-cost explorer: an
//! open-addressed hash table keyed by the 128-bit canonical state
//! fingerprint, with the per-state metadata (minimal depth, class, orbit
//! flag) packed into one word beside the key.
//!
//! The legacy DFS keeps the `HashMap`-based [`crate::explorer::Visited`]
//! because its sleep-set covers need per-entry vectors; the uniform-cost
//! frontier stores exactly one fixed-size record per canonical state, so
//! a flat probe table wins on both memory (32 bytes per slot against
//! ~96 per `HashMap` entry) and lookup locality — the lever that lets
//! `max_states` valves rise into the millions.
//!
//! Layout per slot: the `u128` fingerprint, a packed meta word
//! (occupancy sentinel, orbit flag, class tag, depth) and the decided
//! value (meaningful only under the `Decided` tag). Probing is linear;
//! the table grows by doubling tiers at 3/4 load, so capacity — and
//! therefore every capacity-derived report field — is a pure function
//! of the number of distinct fingerprints inserted, independent of
//! insertion order and worker count.

use crate::explorer::Class;

/// One visited canonical state, as stored per slot: minimal depth,
/// classification at that depth, and the orbit-nontriviality flag (see
/// [`crate::reduce::Symmetry::canonical_hash`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpEntry {
    /// Minimal branching depth at which the state was reached.
    pub depth: u32,
    /// Classification at the minimal depth.
    pub class: Class,
    /// The state's orbit under the symmetry group is nontrivial.
    pub symmetric: bool,
}

/// Outcome of [`FpTable::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recorded {
    /// First sighting: the entry was inserted.
    New,
    /// The fingerprint was known, but strictly deeper — depth and class
    /// were corrected downward (the label-correcting fallback; never
    /// taken under depth-ordered expansion).
    Shallower,
    /// The fingerprint was known at an equal or smaller depth; nothing
    /// changed.
    Known,
}

const OCCUPIED: u64 = 1 << 63;
const SYMMETRIC: u64 = 1 << 62;
const TAG_SHIFT: u32 = 32;
const TAG_MASK: u64 = 0x7 << TAG_SHIFT;
const DEPTH_MASK: u64 = u32::MAX as u64;

const TAG_EXPANDED: u64 = 0;
const TAG_TRUNCATED: u64 = 1;
const TAG_VIOLATING: u64 = 2;
const TAG_QUIESCENT: u64 = 3;
const TAG_DECIDED: u64 = 4;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u128,
    meta: u64,
    value: u64,
}

const EMPTY: Slot = Slot {
    key: 0,
    meta: 0,
    value: 0,
};

fn pack(entry: FpEntry) -> (u64, u64) {
    let (tag, value) = match entry.class {
        Class::Expanded => (TAG_EXPANDED, 0),
        Class::Truncated => (TAG_TRUNCATED, 0),
        Class::Violating => (TAG_VIOLATING, 0),
        Class::QuiescentUndecided => (TAG_QUIESCENT, 0),
        Class::Decided(v) => (TAG_DECIDED, v),
    };
    let meta = OCCUPIED
        | if entry.symmetric { SYMMETRIC } else { 0 }
        | (tag << TAG_SHIFT)
        | entry.depth as u64;
    (meta, value)
}

fn unpack(meta: u64, value: u64) -> FpEntry {
    let class = match (meta & TAG_MASK) >> TAG_SHIFT {
        TAG_EXPANDED => Class::Expanded,
        TAG_TRUNCATED => Class::Truncated,
        TAG_VIOLATING => Class::Violating,
        TAG_QUIESCENT => Class::QuiescentUndecided,
        TAG_DECIDED => Class::Decided(value),
        _ => unreachable!("invalid class tag"),
    };
    FpEntry {
        depth: (meta & DEPTH_MASK) as u32,
        class,
        symmetric: meta & SYMMETRIC != 0,
    }
}

/// The open-addressed fingerprint table. See the module docs.
#[derive(Debug, Clone)]
pub struct FpTable {
    slots: Box<[Slot]>,
    len: usize,
}

impl Default for FpTable {
    fn default() -> Self {
        FpTable::new()
    }
}

impl FpTable {
    /// Bytes per slot — the constant behind the peak-memory estimate.
    pub const SLOT_BYTES: u64 = std::mem::size_of::<Slot>() as u64;

    /// Smallest tier: 1024 slots (32 KiB).
    const MIN_SLOTS: usize = 1 << 10;

    /// An empty table at the smallest tier.
    pub fn new() -> Self {
        FpTable {
            slots: vec![EMPTY; Self::MIN_SLOTS].into_boxed_slice(),
            len: 0,
        }
    }

    /// Number of distinct fingerprints recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no fingerprint has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count. A pure function of [`FpTable::len`] (tiers
    /// double at 3/4 load), so it is identical across worker partitions
    /// once tables are merged.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn probe(&self, key: u128) -> usize {
        let mask = self.slots.len() - 1;
        let mut idx = key as u64 as usize & mask;
        loop {
            let slot = &self.slots[idx];
            if slot.meta & OCCUPIED == 0 || slot.key == key {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Looks up a fingerprint.
    pub fn get(&self, key: u128) -> Option<FpEntry> {
        let slot = &self.slots[self.probe(key)];
        (slot.meta & OCCUPIED != 0).then(|| unpack(slot.meta, slot.value))
    }

    /// Records `entry` under `key` with min-depth semantics: inserts on
    /// first sighting, corrects depth and class downward on a strictly
    /// shallower revisit, and leaves equal-or-deeper revisits untouched.
    /// The orbit flag is a pure function of the canonical state, so a
    /// revisit must agree on it (debug-asserted), as must the class at
    /// equal depth.
    pub fn record(&mut self, key: u128, entry: FpEntry) -> Recorded {
        let idx = self.probe(key);
        let slot = &mut self.slots[idx];
        if slot.meta & OCCUPIED == 0 {
            let (meta, value) = pack(entry);
            *slot = Slot { key, meta, value };
            self.len += 1;
            self.maybe_grow();
            return Recorded::New;
        }
        let existing = unpack(slot.meta, slot.value);
        debug_assert_eq!(
            existing.symmetric, entry.symmetric,
            "orbit flag is a function of the canonical state"
        );
        if entry.depth < existing.depth {
            let (meta, value) = pack(entry);
            slot.meta = meta;
            slot.value = value;
            Recorded::Shallower
        } else {
            if entry.depth == existing.depth {
                debug_assert_eq!(
                    existing.class, entry.class,
                    "state classification must be a function of (state, depth)"
                );
            }
            Recorded::Known
        }
    }

    fn maybe_grow(&mut self) {
        if self.len * 4 <= self.slots.len() * 3 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap].into_boxed_slice());
        let mask = new_cap - 1;
        for slot in old.iter().filter(|s| s.meta & OCCUPIED != 0) {
            let mut idx = slot.key as u64 as usize & mask;
            while self.slots[idx].meta & OCCUPIED != 0 {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = *slot;
        }
    }

    /// Iterates the recorded `(fingerprint, entry)` pairs in slot order.
    /// Callers must aggregate commutatively — slot order depends on
    /// insertion history.
    pub fn iter(&self) -> impl Iterator<Item = (u128, FpEntry)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.meta & OCCUPIED != 0)
            .map(|s| (s.key, unpack(s.meta, s.value)))
    }

    /// Merges another table in by minimal depth (commutative and
    /// associative — the worker count cannot change the result).
    pub fn merge(&mut self, other: &FpTable) {
        for (key, entry) in other.iter() {
            self.record(key, entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(depth: u32, class: Class, symmetric: bool) -> FpEntry {
        FpEntry {
            depth,
            class,
            symmetric,
        }
    }

    #[test]
    fn record_keeps_min_depth_and_round_trips_every_class() {
        let mut t = FpTable::new();
        let classes = [
            Class::Expanded,
            Class::Truncated,
            Class::Violating,
            Class::QuiescentUndecided,
            Class::Decided(u64::MAX - 1),
        ];
        for (i, class) in classes.iter().enumerate() {
            let key = (i as u128 + 1) << 64 | 0xdead_beef;
            assert_eq!(t.record(key, e(7, *class, i % 2 == 0)), Recorded::New);
            assert_eq!(t.get(key), Some(e(7, *class, i % 2 == 0)));
        }
        assert_eq!(t.len(), classes.len());
        // Deeper revisit: untouched. Shallower: corrected.
        let key = 1u128 << 64 | 0xdead_beef;
        assert_eq!(t.record(key, e(9, Class::Expanded, true)), Recorded::Known);
        assert_eq!(
            t.record(key, e(3, Class::Expanded, true)),
            Recorded::Shallower
        );
        assert_eq!(t.get(key), Some(e(3, Class::Expanded, true)));
        assert_eq!(t.get(0x1234), None);
    }

    #[test]
    fn growth_is_a_pure_function_of_len() {
        // Insert the same key set in two different orders; len and
        // capacity must agree (the bit-identical report contract leans
        // on this).
        let keys: Vec<u128> = (0..5000u128)
            .map(|i| i.wrapping_mul(0x9e3779b9) | 1)
            .collect();
        let mut a = FpTable::new();
        let mut b = FpTable::new();
        for &k in &keys {
            a.record(k, e(1, Class::Expanded, false));
        }
        for &k in keys.iter().rev() {
            b.record(k, e(1, Class::Expanded, false));
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.capacity(), b.capacity());
        assert!(a.capacity() * 3 >= a.len() * 4, "under 3/4 load");
    }

    #[test]
    fn merge_is_min_depth_and_order_independent() {
        let mut a = FpTable::new();
        let mut b = FpTable::new();
        a.record(10, e(4, Class::Expanded, false));
        a.record(20, e(2, Class::Decided(3), false));
        b.record(10, e(2, Class::Expanded, false));
        b.record(30, e(1, Class::Violating, false));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let collect = |t: &FpTable| {
            let mut v: Vec<_> = t.iter().collect();
            v.sort_by_key(|(k, _)| *k);
            v
        };
        assert_eq!(collect(&ab), collect(&ba));
        assert_eq!(ab.get(10).unwrap().depth, 2);
        assert_eq!(ab.len(), 3);
    }
}
