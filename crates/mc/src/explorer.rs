//! The bounded DFS explorer: visited-state memoization, commutation
//! collapsing, sharded parallel frontier, and canonical minimal
//! counterexamples.
//!
//! # State graph
//!
//! A node is a *canonical* simulation state: all absorbed (no-op)
//! deliveries drained. An edge fires one of the canonical branching
//! choices — **every** pending event, deduplicated by event hash (see
//! [`ExploreSim::choices`] for why no recipient may be privileged). Two
//! reductions keep this tractable without losing schedules: absorbed
//! no-op deliveries fire eagerly without branching, and commuting
//! interleavings (deliveries to distinct recipients in either order)
//! converge to one canonical state hash, so diamonds cost their
//! intermediate states but never duplicate subtrees.
//!
//! # Determinism across worker counts
//!
//! The first `frontier_depth` branch decisions are expanded serially; the
//! resulting frontier roots are sharded across workers by stride (no
//! shared cursor, no mutex — the PR 2 campaign batching, applied to
//! subtree roots). Each worker runs a label-correcting DFS: a state is
//! re-expanded when reached at a strictly smaller depth, so every worker
//! computes the true minimal depth of each state reachable from its
//! roots. Per-worker maps are merged by minimum depth, and
//! `reachable(⋃ roots) = ⋃ reachable(rootsᵂ)`, so the merged map — and
//! every statistic derived from it — is identical for 1, 2 or 8 workers.
//! Counterexamples are *recomputed* from the merged verdict (minimal
//! violation depth) by one serial lexicographic search, never taken from
//! whichever worker stumbled on one first.

use std::collections::HashMap;

use scup_harness::scenario::ExploreSpec;
use scup_scp::{ScpMsg, Value};
use scup_sim::{ExploreSim, SimState};

use crate::build::Setup;

/// What one canonical state is: an inner node or one of the leaf kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Inner node: expanded further.
    Expanded,
    /// Depth bound hit — exploration is incomplete past this state.
    Truncated,
    /// The decisions so far violate agreement or validity.
    Violating,
    /// Every correct process externalized the same value. Terminal even
    /// with deliveries still pending: externalization is write-once, so no
    /// extension can change any safety verdict — the remaining flood tail
    /// carries no information.
    Decided(Value),
    /// No events pending; undecided or partially decided (no violation).
    QuiescentUndecided,
}

/// The visited map: canonical state hash → (minimal depth, class at that
/// depth). Only lookups and merges touch it — never iteration order.
pub type Visited = HashMap<u128, (u32, Class)>;

/// The state cap of [`ExploreSpec::max_states`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCapExceeded;

/// One exploration engine over a resolved scenario.
pub struct Engine<'a> {
    setup: &'a Setup,
    spec: ExploreSpec,
}

impl<'a> Engine<'a> {
    /// Creates the engine.
    pub fn new(setup: &'a Setup, spec: ExploreSpec) -> Self {
        Engine { setup, spec }
    }

    /// Builds a simulation for `variant` and replays a canonical choice
    /// path: drain absorbed events, fire the recorded choice, repeat.
    pub fn replay(&self, variant: u32, path: &[u32]) -> ExploreSim<ScpMsg> {
        let mut sim = self.setup.build_sim(variant);
        self.replay_into(&mut sim, path);
        sim
    }

    /// Replays a canonical choice path into a caller-prepared simulation
    /// (e.g. one with tracing enabled for counterexample rendering).
    pub fn replay_into(&self, sim: &mut ExploreSim<ScpMsg>, path: &[u32]) {
        sim.start();
        for &choice in path {
            sim.drain_absorbed();
            sim.fire(choice as usize);
        }
        sim.drain_absorbed();
    }

    /// Classifies the (canonical) current state.
    fn classify(&self, sim: &ExploreSim<ScpMsg>, depth: u32) -> Class {
        let decisions = self.setup.decisions(sim);
        if self.setup.violates(&decisions) {
            return Class::Violating;
        }
        let correct = self.setup.correct();
        let mut agreed = None;
        let mut all_decided = true;
        for i in correct.iter() {
            match (decisions[i.index()], agreed) {
                (None, _) => {
                    all_decided = false;
                    break;
                }
                (Some(v), None) => agreed = Some(v),
                // classify ran after `violates`: equal by construction.
                (Some(_), Some(_)) => {}
            }
        }
        if all_decided {
            if let Some(v) = agreed {
                return Class::Decided(v);
            }
        }
        if sim.is_quiescent() {
            return Class::QuiescentUndecided;
        }
        if depth >= self.spec.max_steps {
            Class::Truncated
        } else {
            Class::Expanded
        }
    }

    /// Records the canonical state in `visited`; returns the branching
    /// choices when the state is an inner node seen at a new minimal
    /// depth. Label-correcting: a strictly shallower revisit re-expands.
    fn visit(&self, sim: &ExploreSim<ScpMsg>, visited: &mut Visited) -> Option<Vec<usize>> {
        let depth = sim.steps() as u32;
        let hash = sim.state_hash();
        if let Some(&(prev_depth, prev_class)) = visited.get(&hash) {
            if prev_depth <= depth {
                debug_assert!(
                    prev_depth < depth || prev_class == self.classify(sim, depth),
                    "state classification must be a function of (state, depth)"
                );
                return None;
            }
        }
        let class = self.classify(sim, depth);
        visited.insert(hash, (depth, class));
        if class == Class::Expanded {
            Some(sim.choices())
        } else {
            None
        }
    }

    /// Depth-first exploration of the subtree rooted at `path` for one
    /// adversary variant.
    ///
    /// # Errors
    ///
    /// Returns [`StateCapExceeded`] when `visited` outgrows the safety
    /// valve.
    pub fn dfs(
        &self,
        variant: u32,
        path: &[u32],
        visited: &mut Visited,
    ) -> Result<(), StateCapExceeded> {
        struct Frame {
            state: SimState<ScpMsg>,
            choices: Vec<usize>,
            next: usize,
        }

        let mut sim = self.replay(variant, path);
        let Some(choices) = self.visit(&sim, visited) else {
            return Ok(());
        };
        let mut stack = vec![Frame {
            state: sim.snapshot(),
            choices,
            next: 0,
        }];
        while let Some(top) = stack.last_mut() {
            if visited.len() as u64 > self.spec.max_states {
                return Err(StateCapExceeded);
            }
            let Some(&choice) = top.choices.get(top.next) else {
                stack.pop();
                continue;
            };
            top.next += 1;
            // A frame is pushed with the live sim exactly in `state`, so
            // the first child skips the (actor-forking) restore.
            if top.next > 1 {
                sim.restore(&top.state);
            }
            sim.fire(choice);
            sim.drain_absorbed();
            // Single-choice chains run in place — no snapshot, no restore.
            let mut choices = self.visit(&sim, visited);
            while let Some(c) = choices.as_deref() {
                let [only] = c else { break };
                sim.fire(*only);
                sim.drain_absorbed();
                choices = self.visit(&sim, visited);
            }
            if let Some(choices) = choices {
                stack.push(Frame {
                    state: sim.snapshot(),
                    choices,
                    next: 0,
                });
            }
        }
        Ok(())
    }

    /// Serially expands the first [`ExploreSpec::frontier_depth`] branch
    /// decisions of one variant, recording the prefix states in `visited`
    /// and returning the frontier root paths to shard across workers.
    ///
    /// # Errors
    ///
    /// Returns [`StateCapExceeded`] when the prefix alone outgrows the cap.
    pub fn frontier(
        &self,
        variant: u32,
        visited: &mut Visited,
    ) -> Result<Vec<Vec<u32>>, StateCapExceeded> {
        let mut layer: Vec<Vec<u32>> = vec![Vec::new()];
        for _ in 0..self.spec.frontier_depth {
            let mut next = Vec::new();
            for path in &layer {
                if visited.len() as u64 > self.spec.max_states {
                    return Err(StateCapExceeded);
                }
                let sim = self.replay(variant, path);
                if let Some(choices) = self.visit(&sim, visited) {
                    for choice in choices {
                        let mut extended = path.clone();
                        extended.push(choice as u32);
                        next.push(extended);
                    }
                }
            }
            if next.is_empty() {
                return Ok(Vec::new());
            }
            layer = next;
        }
        Ok(layer)
    }

    /// Finds the canonical minimal counterexample once the merged map
    /// established that the minimal violating depth is `d_star`: one
    /// serial depth-limited DFS per variant, choices in ascending order,
    /// stopping at the first violating state. Independent of the parallel
    /// traversal, hence identical for every worker count.
    pub fn find_cex(&self, variants: u32, d_star: u32) -> Option<(u32, Vec<u32>)> {
        for variant in 0..variants {
            let mut visited: HashMap<u128, u32> = HashMap::new();
            let mut sim = self.setup.build_sim(variant);
            sim.start();
            sim.drain_absorbed();
            if let Some(found) = self.cex_dfs(&mut sim, d_star, &mut visited) {
                return Some((variant, found));
            }
        }
        None
    }

    fn cex_dfs(
        &self,
        sim: &mut ExploreSim<ScpMsg>,
        d_star: u32,
        visited: &mut HashMap<u128, u32>,
    ) -> Option<Vec<u32>> {
        struct Frame {
            state: SimState<ScpMsg>,
            choices: Vec<usize>,
            next: usize,
        }
        let enter = |sim: &ExploreSim<ScpMsg>,
                     visited: &mut HashMap<u128, u32>,
                     path: &[u32]|
         -> Result<Option<Vec<usize>>, Vec<u32>> {
            let depth = sim.steps() as u32;
            if self.setup.violates(&self.setup.decisions(sim)) {
                return Err(path.to_vec());
            }
            if depth >= d_star {
                return Ok(None);
            }
            match visited.get(&sim.state_hash()) {
                Some(&prev) if prev <= depth => Ok(None),
                _ => {
                    visited.insert(sim.state_hash(), depth);
                    Ok(Some(sim.choices()))
                }
            }
        };

        let mut path: Vec<u32> = Vec::new();
        let mut stack = match enter(sim, visited, &path) {
            Err(found) => return Some(found),
            Ok(None) => return None,
            Ok(Some(choices)) => vec![Frame {
                state: sim.snapshot(),
                choices,
                next: 0,
            }],
        };
        while let Some(top) = stack.last_mut() {
            let Some(&choice) = top.choices.get(top.next) else {
                stack.pop();
                path.pop();
                continue;
            };
            top.next += 1;
            // First child: the live sim is already in `state` (see dfs).
            if top.next > 1 {
                sim.restore(&top.state);
            }
            sim.fire(choice);
            sim.drain_absorbed();
            path.push(choice as u32);
            match enter(sim, visited, &path) {
                Err(found) => return Some(found),
                Ok(Some(choices)) => stack.push(Frame {
                    state: sim.snapshot(),
                    choices,
                    next: 0,
                }),
                Ok(None) => {
                    path.pop();
                }
            }
        }
        None
    }
}

/// Merges worker maps by minimal depth (commutative and associative, so
/// the merge order — and the worker count — cannot change the result).
pub fn merge_visited(into: &mut Visited, from: Visited) {
    for (hash, (depth, class)) in from {
        match into.get_mut(&hash) {
            Some(entry) => {
                if depth < entry.0 {
                    *entry = (depth, class);
                }
            }
            None => {
                into.insert(hash, (depth, class));
            }
        }
    }
}
