//! The bounded explorer: uniform-cost (min-depth-first) search by
//! default with a legacy DFS discipline, visited-state memoization,
//! symmetry-canonical hashing, sleep-set partial-order reduction (DFS
//! only), sharded parallel frontier, and canonical minimal
//! counterexamples.
//!
//! # State graph
//!
//! A node is a *canonical* simulation state: all absorbed (no-op)
//! deliveries drained, identified by the **minimum-over-automorphism-group
//! state hash** (see [`crate::reduce::Symmetry`] — the quotient over
//! interchangeable processes). An edge fires one of the canonical
//! branching choices — **every** pending event, deduplicated by event hash
//! (see [`ExploreSim::choices`] for why no recipient may be privileged).
//!
//! Three reductions keep this tractable without losing schedules:
//!
//! - **absorbed no-op deliveries** fire eagerly without branching;
//! - **symmetry**: states that are renamings of one another along verified
//!   automorphisms collapse to one canonical hash, shrinking the state
//!   *count*;
//! - **eager-inert (persistent-set) firing**: a *threshold-inert*
//!   delivery ([`scup_sim::Actor::threshold_inert`], restricted to
//!   correct origins) commutes with every enabled alternative — siblings
//!   at its own recipient by inertness, everything else by
//!   recipient-disjointness — and stays inert forever, so the singleton
//!   `{e}` is a valid persistent set: firing `e` immediately (uncounted,
//!   like a drain) explores a representative of every interleaving. This
//!   collapses the flood tail and is the reduction that shrinks state
//!   *counts* by orders of magnitude (38 k instead of > 3 M on the
//!   3-proposer cycle);
//! - **sleep sets** (Godefroid-style, over the same dynamic independence
//!   via [`crate::reduce::ChoiceProfile`]): once a choice `e₁` has been
//!   explored from a state, sibling subtrees do not re-fire `e₁` until an
//!   event *dependent* on it fires. Visited caching is sleep-set-aware: a
//!   state is pruned only when an earlier cover subsumes it (see
//!   [`Cover`]), with each entry keeping a small Pareto frontier of
//!   covers.
//!
//! Each reduction preserves the **verdict** exactly — violation found or
//! not, minimal violating depth, decided values, completeness — pinned by
//! the differential tests against the unreduced semantics. Sleep sets do
//! *not* always preserve the raw state census: the explorer cuts
//! exploration at terminal (decided/violating) states, and a state whose
//! trace-equivalent sibling interleaving hits such a terminal earlier can
//! be skipped — harmless, because a skipped state's decisions equal those
//! of an extension of the visited terminal (same event multiset), so its
//! verdict contribution (violating-ness, decided value, and a ≤-depth
//! witness) is already on record.
//!
//! The once-tempting *recipient-priority* reduction (restricting which
//! recipients may fire at all) remains out: review of PR 3 showed it
//! unsound here — a later-created message can overtake a privileged
//! recipient's queue. The persistent sets used above are singletons of
//! provably globally-commuting events, which is a different (and sound)
//! instrument: nothing else is ever *excluded*, exploration of the inert
//! event is merely *forced first*.
//!
//! # Search disciplines
//!
//! The default discipline (`search = "ucs"`) is **uniform-cost**:
//! [`Engine::ucs`] expands a depth-layered frontier, so every state is
//! first reached at its *minimal* branching depth and expanded exactly
//! once — re-expansion count ~0 by construction. The legacy
//! `search = "dfs"` discipline ([`Engine::dfs`]) is *label-correcting*:
//! DFS order reaches many states deep-first, and each strictly shallower
//! revisit forces a full re-expansion to repair depths (167 656
//! re-expansions over 38 359 states on the three-proposer cycle — the
//! blowup that motivated the uniform-cost default). DFS remains the only
//! discipline supporting sleep sets (covers are scoped to DFS frames)
//! and anchors the differential battery that pins `ucs ≡ dfs` on
//! verdict, minimal depth, decided values and census.
//!
//! # Determinism across worker counts
//!
//! The first `frontier_depth` branch decisions are expanded serially —
//! layered min-depth-first, so every prefix state is recorded at its
//! global minimal depth — and the resulting frontier roots are sharded
//! across workers by stride (no shared cursor, no mutex). Each worker
//! computes the true minimal depth of each state reachable from its
//! roots: under ucs because its layers ascend from roots of one common
//! depth, under dfs by label correction (a state reached strictly
//! shallower, or with a sleep set no earlier cover subsumes, is
//! re-expanded). Per-worker maps are merged by minimum depth, and
//! `reachable(⋃ roots) = ⋃ reachable(rootsᵂ)` (sleep sets preserve
//! per-root reachability), so the merged map — and every statistic
//! derived from it — is identical for 1, 2 or 8 workers. Only the
//! traversal *effort* counters (transitions fired, sleep prunes) depend
//! on the partition; reports exclude them from the bit-identical
//! contract exactly like wall-clock times. Counterexamples are
//! *recomputed* from the merged verdict (minimal violation depth) by one
//! serial lexicographic search, never taken from whichever worker
//! stumbled on one first.

use std::collections::HashMap;
use std::rc::Rc;

use scup_harness::scenario::ExploreSpec;
use scup_obs::profile::{Phase, PhaseProfile};
use scup_scp::Value;
use scup_sim::{ExploreSim, SimState};

use crate::build::Driver;
use crate::reduce::{ChoiceProfile, Symmetry};
use crate::visited::{FpEntry, FpTable, Recorded};

/// What one canonical state is: an inner node or one of the leaf kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Inner node: expanded further.
    Expanded,
    /// Depth bound hit — exploration is incomplete past this state.
    Truncated,
    /// The decisions so far violate agreement or validity.
    Violating,
    /// Every correct process externalized the same value. Terminal even
    /// with deliveries still pending: externalization is write-once, so no
    /// extension can change any safety verdict — the remaining flood tail
    /// carries no information.
    Decided(Value),
    /// No events pending; undecided or partially decided (no violation).
    QuiescentUndecided,
}

/// One visited canonical state: its minimal depth and class (the
/// deterministic statistics), whether its canonical representative
/// differs from the state as reached (the symmetry-hit statistic — a pure
/// function of the state), and the sleep-set covers (worker-local
/// exploration bookkeeping, never merged).
#[derive(Debug, Clone)]
pub struct VisitEntry {
    /// Minimal branching depth at which the state was reached.
    pub depth: u32,
    /// Classification at the minimal depth.
    pub class: Class,
    /// The canonical hash differed from the identity hash: some
    /// interchangeable renaming of this state is the class representative.
    pub symmetric: bool,
    /// Pareto frontier of covers under which the state was expanded; a
    /// revisit is pruned iff some cover subsumes it (see [`Cover`]).
    covers: Vec<Cover>,
}

/// One recorded expansion of a visited canonical state.
///
/// A cover subsumes a revisit at depth `d` with sleep set `S` (in the
/// revisit's own frame, identity hash `raw`) iff `depth ≤ d` and either
/// the cover's sleep set is empty — a full expansion, valid for **every**
/// orbit member since it promises nothing frame-specific — or the revisit
/// is the *same* orbit member (`raw` matches) and the cover's sleep is a
/// subset of `S`. Sleep hashes mention concrete process ids, so non-empty
/// covers must never cross frames: applying one to a renamed orbit member
/// would prune schedules nobody explored (caught by the cross-worker
/// determinism test before this rule carried the frame).
#[derive(Debug, Clone)]
struct Cover {
    depth: u32,
    /// Identity (pre-canonicalization) hash of the member that was
    /// expanded; only meaningful for non-empty sleep sets.
    raw: u128,
    /// Sorted, deduplicated sleeping event hashes, in `raw`'s frame.
    sleep: Box<[u128]>,
}

impl Cover {
    fn subsumes(&self, depth: u32, raw: u128, sleep: &[u128]) -> bool {
        self.depth <= depth
            && (self.sleep.is_empty() || (self.raw == raw && sorted_subset(&self.sleep, sleep)))
    }
}

/// The visited map: canonical state hash → [`VisitEntry`]. Only lookups
/// and merges touch it — never iteration order.
pub type Visited = HashMap<u128, VisitEntry>;

/// Traversal-effort counters and (optional) phase profiling;
/// partition-dependent (excluded from the bit-identical report contract,
/// like wall-clock times).
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Branching events fired during exploration.
    pub transitions: u64,
    /// Choices skipped because they were asleep.
    pub sleep_prunes: u64,
    /// Revisits of an already-recorded canonical state that no earlier
    /// cover subsumed, forcing a re-expansion (label correction at work).
    pub reexpansions: u64,
    /// Per-phase wall-time attribution (inert unless obs profiling is
    /// on — see [`WorkerStats::profiled`]).
    pub profile: PhaseProfile,
    /// Peak visited-map occupancy across workers: `(len, capacity)` of
    /// the largest per-worker map (set by the campaign driver).
    pub visited_peak: (u64, u64),
    /// Sampled `(transitions, branching depth)` pairs — the
    /// frontier-depth-over-time series. Stride doubles (with decimation)
    /// when the buffer fills, bounding it to [`DEPTH_SAMPLE_CAP`].
    pub depth_samples: Vec<(u64, u32)>,
    depth_stride: u64,
}

/// Bound on the per-worker depth-sample series.
pub const DEPTH_SAMPLE_CAP: usize = 2048;

impl Default for WorkerStats {
    fn default() -> Self {
        WorkerStats {
            transitions: 0,
            sleep_prunes: 0,
            reexpansions: 0,
            profile: PhaseProfile::disabled(),
            visited_peak: (0, 0),
            depth_samples: Vec::new(),
            depth_stride: 64,
        }
    }
}

impl WorkerStats {
    /// Stats with phase profiling and depth sampling switched on.
    pub fn profiled() -> Self {
        WorkerStats {
            profile: PhaseProfile::enabled(),
            ..WorkerStats::default()
        }
    }

    /// Accumulates another worker's counters (profiles sum; the visited
    /// peak keeps the larger map; depth samples concatenate, decimated
    /// back under the cap).
    pub fn absorb(&mut self, other: WorkerStats) {
        self.transitions += other.transitions;
        self.sleep_prunes += other.sleep_prunes;
        self.reexpansions += other.reexpansions;
        self.profile.merge(&other.profile);
        if other.visited_peak.0 > self.visited_peak.0 {
            self.visited_peak = other.visited_peak;
        }
        self.depth_samples.extend_from_slice(&other.depth_samples);
        while self.depth_samples.len() > DEPTH_SAMPLE_CAP {
            let mut keep = false;
            self.depth_samples.retain(|_| {
                keep = !keep;
                keep
            });
        }
    }

    /// Records one frontier-depth sample if profiling is on and the
    /// stride says so.
    #[inline]
    fn sample_depth(&mut self, depth: u32) {
        if self.profile.is_enabled() && self.transitions.is_multiple_of(self.depth_stride) {
            self.depth_samples.push((self.transitions, depth));
            if self.depth_samples.len() >= DEPTH_SAMPLE_CAP {
                // Halve resolution: keep every other sample, double the
                // stride.
                let mut keep = false;
                self.depth_samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.depth_stride *= 2;
            }
        }
    }
}

/// The state cap of [`ExploreSpec::max_states`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCapExceeded;

/// `a ⊆ b` for sorted, deduplicated hash slices.
fn sorted_subset(a: &[u128], b: &[u128]) -> bool {
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Inserts a cover, dropping existing covers it subsumes.
fn push_cover(covers: &mut Vec<Cover>, cover: Cover) {
    covers.retain(|c| !cover.subsumes(c.depth, c.raw, &c.sleep));
    covers.push(cover);
}

/// One exploration engine over a resolved scenario, generic over the
/// protocol [`Driver`] (SCP phase, BFT-CUP, or the full stack).
pub struct Engine<'a, D: Driver> {
    driver: &'a D,
    spec: ExploreSpec,
    symmetry: Symmetry,
}

impl<'a, D: Driver> Engine<'a, D> {
    /// Creates the engine, computing the scenario's automorphism group
    /// once (identity-only when `spec.symmetry` is off).
    pub fn new(driver: &'a D, spec: ExploreSpec) -> Self {
        let symmetry = if spec.symmetry {
            Symmetry::compute(driver.setup())
        } else {
            // Identity-only, but still variant-mixing: the adversary's
            // split is no longer part of the actor fingerprint, so the
            // engine must keep (state, variant) pairs distinct itself.
            Symmetry::trivial_for(driver.setup())
        };
        Engine {
            driver,
            spec,
            symmetry,
        }
    }

    /// The scenario's automorphism group (for reporting).
    pub fn symmetry(&self) -> &Symmetry {
        &self.symmetry
    }

    /// Builds a simulation for `variant` and replays a canonical choice
    /// path: drain absorbed events, fire the recorded choice, repeat.
    pub fn replay(&self, variant: u32, path: &[u32]) -> ExploreSim<D::Msg> {
        let mut sim = self.driver.build_sim(variant);
        self.replay_into(&mut sim, path);
        sim
    }

    /// Replays a canonical choice path into a caller-prepared simulation
    /// (e.g. one with tracing enabled for counterexample rendering).
    pub fn replay_into(&self, sim: &mut ExploreSim<D::Msg>, path: &[u32]) {
        sim.start();
        for &choice in path {
            self.settle(sim);
            sim.fire(choice as usize);
        }
        self.settle(sim);
    }

    /// Canonicalizes the live state: drains absorbed no-op deliveries,
    /// then (under `eager_inert`) fires every threshold-inert delivery
    /// from a correct origin as a forced, *uncounted* move — the
    /// singleton persistent set: such a delivery commutes with every
    /// enabled alternative (same-recipient siblings by inertness,
    /// everything else by recipient-disjointness) and stays inert in
    /// every extension, so exploring only the schedule that fires it
    /// immediately covers a representative of every interleaving. Fires
    /// ascend by pending index — deterministic for any worker count.
    fn settle(&self, sim: &mut ExploreSim<D::Msg>) {
        sim.drain_absorbed();
        if !self.spec.eager_inert {
            return;
        }
        'outer: loop {
            let pending = sim.pending().len();
            for idx in 0..pending {
                let origin_ok = match sim.pending_at(idx) {
                    scup_sim::ExploreEvent::Deliver { from, msg, .. } => {
                        let origin = self.driver.msg_origin(*from, msg);
                        let correct = !self.driver.setup().faulty.contains(origin);
                        self.driver.inert_origin_ok(correct, msg)
                    }
                    scup_sim::ExploreEvent::Timer { .. } => false,
                };
                if origin_ok && sim.is_threshold_inert(idx) {
                    sim.fire_uncounted(idx);
                    sim.drain_absorbed();
                    continue 'outer;
                }
            }
            return;
        }
    }

    /// Classifies the (canonical) current state.
    fn classify(&self, sim: &ExploreSim<D::Msg>, depth: u32) -> Class {
        let decisions = self.driver.decisions(sim);
        if self.driver.setup().violates(&decisions) {
            return Class::Violating;
        }
        let correct = self.driver.setup().correct();
        let mut agreed = None;
        let mut all_decided = true;
        for i in correct.iter() {
            match (decisions[i.index()], agreed) {
                (None, _) => {
                    all_decided = false;
                    break;
                }
                (Some(v), None) => agreed = Some(v),
                // classify ran after `violates`: equal by construction.
                (Some(_), Some(_)) => {}
            }
        }
        if all_decided {
            if let Some(v) = agreed {
                return Class::Decided(v);
            }
        }
        if sim.is_quiescent() {
            return Class::QuiescentUndecided;
        }
        if depth >= self.spec.max_steps {
            Class::Truncated
        } else {
            Class::Expanded
        }
    }

    /// Records the canonical state in `visited`; returns the branching
    /// choices to fire (with their sleep profiles, sleeping ones filtered
    /// out) when the state is an inner node not subsumed by an earlier
    /// cover.
    /// Label-correcting and sleep-aware: a revisit re-expands fully when
    /// it is strictly shallower, or when no earlier cover explored the
    /// state under a subset of the current sleep set. (A diff-only
    /// re-expansion — re-firing just the choices the best cover had left
    /// asleep — was tried and *dropped*: transplanting a cover's
    /// coverage promise into a different sleep context creates circular
    /// justifications, and the differential tests caught it losing a
    /// violating state.)
    fn visit(
        &self,
        variant: u32,
        sim: &ExploreSim<D::Msg>,
        visited: &mut Visited,
        sleep: &[ChoiceProfile],
        stats: &mut WorkerStats,
    ) -> Option<Vec<(usize, ChoiceProfile)>> {
        let depth = sim.steps() as u32;
        stats.profile.lap_start();
        let (hash, raw, symmetric) = if stats.profile.is_enabled() {
            let raw = self.symmetry.identity_hash(sim, variant);
            stats.profile.lap(Phase::Fingerprint);
            let (hash, moved) = self.symmetry.canonicalize_from(sim, variant, raw);
            stats.profile.lap(Phase::Canonicalize);
            (hash, raw, moved)
        } else {
            self.symmetry.canonical_hash(sim, variant)
        };
        let mut sleep_hashes: Vec<u128> = sleep.iter().map(|p| p.hash).collect();
        sleep_hashes.sort_unstable();
        sleep_hashes.dedup();

        let mut revisit = false;
        if let Some(entry) = visited.get(&hash) {
            revisit = true;
            if entry
                .covers
                .iter()
                .any(|c| c.subsumes(depth, raw, &sleep_hashes))
            {
                stats.profile.lap(Phase::Dedup);
                return None;
            }
        }
        let class = self.classify(sim, depth);
        let entry = visited.entry(hash).or_insert(VisitEntry {
            depth,
            class,
            symmetric,
            covers: Vec::new(),
        });
        if depth < entry.depth {
            entry.depth = depth;
            entry.class = class;
        } else if depth == entry.depth {
            debug_assert!(
                entry.class == class,
                "state classification must be a function of (state, depth)"
            );
        }
        if class == Class::Expanded {
            let mut choices = Vec::new();
            for idx in sim.choices() {
                let profile = ChoiceProfile::of(self.driver, sim, idx, self.spec.sleep_sets);
                if sleep_hashes.binary_search(&profile.hash).is_ok() {
                    stats.sleep_prunes += 1;
                    continue;
                }
                choices.push((idx, profile));
            }
            push_cover(
                &mut entry.covers,
                Cover {
                    depth,
                    raw,
                    sleep: sleep_hashes.into_boxed_slice(),
                },
            );
            if revisit {
                stats.reexpansions += 1;
            }
            stats.profile.lap(Phase::Dedup);
            Some(choices)
        } else {
            // Terminal (or truncated): nothing below to cover — an empty
            // sleep cover makes future dominance purely depth-based (and
            // frame-free, hence valid for the whole orbit).
            push_cover(
                &mut entry.covers,
                Cover {
                    depth,
                    raw: 0,
                    sleep: Box::new([]),
                },
            );
            stats.profile.lap(Phase::Dedup);
            None
        }
    }

    /// Depth-first exploration of the subtree rooted at `path` for one
    /// adversary variant.
    ///
    /// # Errors
    ///
    /// Returns [`StateCapExceeded`] when `visited` outgrows the safety
    /// valve.
    pub fn dfs(
        &self,
        variant: u32,
        path: &[u32],
        visited: &mut Visited,
        stats: &mut WorkerStats,
    ) -> Result<(), StateCapExceeded> {
        struct Frame<M: scup_sim::SimMessage> {
            state: SimState<M>,
            choices: Vec<(usize, ChoiceProfile)>,
            sleep: Vec<ChoiceProfile>,
            next: usize,
        }

        let mut sim = self.replay(variant, path);
        let Some(choices) = self.visit(variant, &sim, visited, &[], stats) else {
            return Ok(());
        };
        let mut stack = vec![Frame {
            state: sim.snapshot(),
            choices,
            sleep: Vec::new(),
            next: 0,
        }];
        while let Some(top) = stack.last_mut() {
            if visited.len() as u64 > self.spec.max_states {
                return Err(StateCapExceeded);
            }
            let Some(&(choice, profile)) = top.choices.get(top.next) else {
                stack.pop();
                continue;
            };
            top.next += 1;
            // A frame is pushed with the live sim exactly in `state`, so
            // the first child skips the (actor-forking) restore.
            if top.next > 1 {
                sim.restore(&top.state);
            }
            // Sleep set of the child: surviving inherited sleepers plus
            // the already-explored elder siblings — each kept only while
            // independent of the fired choice (a dependent event wakes
            // them up).
            let mut child_sleep: Vec<ChoiceProfile> = if self.spec.sleep_sets {
                top.sleep
                    .iter()
                    .chain(top.choices[..top.next - 1].iter().map(|(_, p)| p))
                    .filter(|e| e.independent(&profile))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            stats.transitions += 1;
            stats.profile.lap_start();
            sim.fire(choice);
            stats.profile.lap(Phase::Expand);
            self.settle(&mut sim);
            stats.profile.lap(Phase::Settle);
            stats.sample_depth(sim.steps() as u32);
            // Single-choice chains run in place — no snapshot, no restore.
            let mut choices = self.visit(variant, &sim, visited, &child_sleep, stats);
            while let Some([(only, only_profile)]) = choices.as_deref() {
                let (only, only_profile) = (*only, *only_profile);
                child_sleep.retain(|e| e.independent(&only_profile));
                stats.transitions += 1;
                stats.profile.lap_start();
                sim.fire(only);
                stats.profile.lap(Phase::Expand);
                self.settle(&mut sim);
                stats.profile.lap(Phase::Settle);
                stats.sample_depth(sim.steps() as u32);
                choices = self.visit(variant, &sim, visited, &child_sleep, stats);
            }
            if let Some(choices) = choices {
                stack.push(Frame {
                    state: sim.snapshot(),
                    choices,
                    sleep: child_sleep,
                    next: 0,
                });
            }
        }
        Ok(())
    }

    /// Records the canonical state in the compact fingerprint table;
    /// returns the branching choices when the state is a first-sighted
    /// inner node. The uniform-cost analogue of [`Engine::visit`]: no
    /// sleep sets (rejected at parse time under ucs), no covers — one
    /// fixed-size record per canonical state. Equal-or-deeper revisits
    /// are pure table lookups; a strictly shallower revisit corrects the
    /// record and counts as a re-expansion (never taken under
    /// depth-layered expansion — the counter exists to prove that).
    fn visit_fp(
        &self,
        variant: u32,
        sim: &ExploreSim<D::Msg>,
        visited: &mut FpTable,
        stats: &mut WorkerStats,
    ) -> Option<Vec<usize>> {
        let depth = sim.steps() as u32;
        stats.profile.lap_start();
        let (hash, symmetric) = if stats.profile.is_enabled() {
            let raw = self.symmetry.identity_hash(sim, variant);
            stats.profile.lap(Phase::Fingerprint);
            let (hash, moved) = self.symmetry.canonicalize_from(sim, variant, raw);
            stats.profile.lap(Phase::Canonicalize);
            (hash, moved)
        } else {
            let (hash, _, moved) = self.symmetry.canonical_hash(sim, variant);
            (hash, moved)
        };
        if let Some(entry) = visited.get(hash) {
            if depth >= entry.depth {
                stats.profile.lap(Phase::Dedup);
                return None;
            }
        }
        let class = self.classify(sim, depth);
        let recorded = visited.record(
            hash,
            FpEntry {
                depth,
                class,
                symmetric,
            },
        );
        if recorded == Recorded::Shallower {
            stats.reexpansions += 1;
        }
        stats.profile.lap(Phase::Dedup);
        (class == Class::Expanded).then(|| sim.choices())
    }

    /// Uniform-cost exploration of the subtrees rooted at `roots` —
    /// `(variant, frontier path)` pairs whose paths all share one length,
    /// so the layered expansion ascends in global depth order and every
    /// canonical state is expanded exactly once, at its minimal depth.
    ///
    /// Each frontier layer holds `(parent snapshot, variant, choice)`
    /// jobs; siblings share their parent's snapshot through an [`Rc`]
    /// (workers are single-threaded), and one live simulation per variant
    /// serves as the restore target, so expanding a job is
    /// restore → fire → settle → classify with no replay from the root.
    ///
    /// # Errors
    ///
    /// Returns [`StateCapExceeded`] when `visited` outgrows the safety
    /// valve.
    pub fn ucs(
        &self,
        roots: &[(u32, Vec<u32>)],
        visited: &mut FpTable,
        stats: &mut WorkerStats,
    ) -> Result<(), StateCapExceeded> {
        struct Job<M: scup_sim::SimMessage> {
            parent: Rc<SimState<M>>,
            variant: u32,
            choice: usize,
        }

        // Bootstrap: replay every root (the only replays ucs ever does),
        // keep one live sim per variant as the restore target, and seed
        // the first layer with the roots' children.
        let mut sims: Vec<Option<ExploreSim<D::Msg>>> = Vec::new();
        let mut layer: Vec<Job<D::Msg>> = Vec::new();
        for (variant, path) in roots {
            if visited.len() as u64 > self.spec.max_states {
                return Err(StateCapExceeded);
            }
            let sim = self.replay(*variant, path);
            if let Some(choices) = self.visit_fp(*variant, &sim, visited, stats) {
                let parent = Rc::new(sim.snapshot());
                for choice in choices {
                    layer.push(Job {
                        parent: Rc::clone(&parent),
                        variant: *variant,
                        choice,
                    });
                }
            }
            let slot = *variant as usize;
            if sims.len() <= slot {
                sims.resize_with(slot + 1, || None);
            }
            if sims[slot].is_none() {
                sims[slot] = Some(sim);
            }
        }

        while !layer.is_empty() {
            let mut next: Vec<Job<D::Msg>> = Vec::new();
            for job in &layer {
                if visited.len() as u64 > self.spec.max_states {
                    return Err(StateCapExceeded);
                }
                let sim = sims[job.variant as usize]
                    .as_mut()
                    .expect("restore target exists for every rooted variant");
                stats.profile.lap_start();
                sim.restore(&job.parent);
                stats.profile.lap(Phase::Restore);
                stats.transitions += 1;
                sim.fire(job.choice);
                stats.profile.lap(Phase::Expand);
                self.settle(sim);
                stats.profile.lap(Phase::Settle);
                stats.sample_depth(sim.steps() as u32);
                if let Some(choices) = self.visit_fp(job.variant, sim, visited, stats) {
                    stats.profile.lap_start();
                    let parent = Rc::new(sim.snapshot());
                    stats.profile.lap(Phase::Restore);
                    for choice in choices {
                        next.push(Job {
                            parent: Rc::clone(&parent),
                            variant: job.variant,
                            choice,
                        });
                    }
                }
            }
            layer = next;
        }
        Ok(())
    }

    /// Serially expands the first [`ExploreSpec::frontier_depth`] branch
    /// decisions of one variant, recording the prefix states in `visited`
    /// and returning the frontier root paths to shard across workers.
    /// The prefix is expanded without sleep sets (full covers), so every
    /// root subtree starts clean.
    ///
    /// # Errors
    ///
    /// Returns [`StateCapExceeded`] when the prefix alone outgrows the cap.
    pub fn frontier(
        &self,
        variant: u32,
        visited: &mut Visited,
        stats: &mut WorkerStats,
    ) -> Result<Vec<Vec<u32>>, StateCapExceeded> {
        let mut layer: Vec<Vec<u32>> = vec![Vec::new()];
        for _ in 0..self.spec.frontier_depth {
            let mut next = Vec::new();
            for path in &layer {
                if visited.len() as u64 > self.spec.max_states {
                    return Err(StateCapExceeded);
                }
                let sim = self.replay(variant, path);
                if let Some(choices) = self.visit(variant, &sim, visited, &[], stats) {
                    for (choice, _) in choices {
                        let mut extended = path.clone();
                        extended.push(choice as u32);
                        next.push(extended);
                    }
                }
            }
            if next.is_empty() {
                return Ok(Vec::new());
            }
            layer = next;
        }
        Ok(layer)
    }

    /// Finds the canonical minimal counterexample once the merged map
    /// established that the minimal violating depth is `d_star`: one
    /// serial depth-limited DFS per variant, choices in ascending order,
    /// stopping at the first violating state. Independent of the parallel
    /// traversal, hence identical for every worker count. (Symmetry
    /// pruning applies — a renamed violating state witnesses the same
    /// minimal depth; sleep sets do not, keeping the search lexicographic
    /// in the raw choice order.)
    pub fn find_cex(&self, variants: u32, d_star: u32) -> Option<(u32, Vec<u32>)> {
        for variant in 0..variants {
            let mut visited: HashMap<u128, u32> = HashMap::new();
            let mut sim = self.driver.build_sim(variant);
            sim.start();
            self.settle(&mut sim);
            if let Some(found) = self.cex_dfs(variant, &mut sim, d_star, &mut visited) {
                return Some((variant, found));
            }
        }
        None
    }

    fn cex_dfs(
        &self,
        variant: u32,
        sim: &mut ExploreSim<D::Msg>,
        d_star: u32,
        visited: &mut HashMap<u128, u32>,
    ) -> Option<Vec<u32>> {
        struct Frame<M: scup_sim::SimMessage> {
            state: SimState<M>,
            choices: Vec<usize>,
            next: usize,
        }
        let enter = |sim: &ExploreSim<D::Msg>,
                     visited: &mut HashMap<u128, u32>,
                     path: &[u32]|
         -> Result<Option<Vec<usize>>, Vec<u32>> {
            let depth = sim.steps() as u32;
            if self.driver.setup().violates(&self.driver.decisions(sim)) {
                return Err(path.to_vec());
            }
            if depth >= d_star {
                return Ok(None);
            }
            let (hash, _, _) = self.symmetry.canonical_hash(sim, variant);
            match visited.get(&hash) {
                Some(&prev) if prev <= depth => Ok(None),
                _ => {
                    visited.insert(hash, depth);
                    Ok(Some(sim.choices()))
                }
            }
        };

        let mut path: Vec<u32> = Vec::new();
        let mut stack = match enter(sim, visited, &path) {
            Err(found) => return Some(found),
            Ok(None) => return None,
            Ok(Some(choices)) => vec![Frame {
                state: sim.snapshot(),
                choices,
                next: 0,
            }],
        };
        while let Some(top) = stack.last_mut() {
            let Some(&choice) = top.choices.get(top.next) else {
                stack.pop();
                path.pop();
                continue;
            };
            top.next += 1;
            // First child: the live sim is already in `state` (see dfs).
            if top.next > 1 {
                sim.restore(&top.state);
            }
            sim.fire(choice);
            self.settle(sim);
            path.push(choice as u32);
            match enter(sim, visited, &path) {
                Err(found) => return Some(found),
                Ok(Some(choices)) => stack.push(Frame {
                    state: sim.snapshot(),
                    choices,
                    next: 0,
                }),
                Ok(None) => {
                    path.pop();
                }
            }
        }
        None
    }
}

/// Merges worker maps by minimal depth (commutative and associative, so
/// the merge order — and the worker count — cannot change the result).
/// Covers are worker-local bookkeeping and are not merged.
pub fn merge_visited(into: &mut Visited, from: Visited) {
    for (hash, entry) in from {
        match into.get_mut(&hash) {
            Some(existing) => {
                debug_assert_eq!(
                    existing.symmetric, entry.symmetric,
                    "symmetry-hit flag is a function of the state"
                );
                if entry.depth < existing.depth {
                    existing.depth = entry.depth;
                    existing.class = entry.class;
                }
            }
            None => {
                into.insert(hash, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_subset_walks_merged() {
        assert!(sorted_subset(&[], &[]));
        assert!(sorted_subset(&[], &[1]));
        assert!(sorted_subset(&[2], &[1, 2, 3]));
        assert!(sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!sorted_subset(&[0], &[1]));
        assert!(!sorted_subset(&[1], &[]));
    }

    #[test]
    fn covers_keep_a_pareto_frontier() {
        let cover = |depth, raw, sleep: Vec<u128>| Cover {
            depth,
            raw,
            sleep: sleep.into_boxed_slice(),
        };
        let mut covers = Vec::new();
        push_cover(&mut covers, cover(5, 42, vec![1, 2]));
        // Dominates (shallower, smaller sleep, same frame): drops the old.
        push_cover(&mut covers, cover(3, 42, vec![1]));
        assert_eq!(covers.len(), 1);
        assert_eq!(covers[0].depth, 3);
        // Incomparable (deeper but disjoint sleep): coexists.
        push_cover(&mut covers, cover(7, 42, vec![9]));
        assert_eq!(covers.len(), 2);
    }

    #[test]
    fn nonempty_covers_never_cross_frames() {
        let c = Cover {
            depth: 2,
            raw: 42,
            sleep: vec![7u128].into_boxed_slice(),
        };
        assert!(c.subsumes(3, 42, &[7, 8]), "same frame, subset sleep");
        assert!(
            !c.subsumes(3, 43, &[7, 8]),
            "a renamed orbit member's sleep hashes live in another frame"
        );
        let full = Cover {
            depth: 2,
            raw: 0,
            sleep: Box::new([]),
        };
        assert!(full.subsumes(3, 43, &[7]), "full expansions are frame-free");
        assert!(!full.subsumes(1, 43, &[7]), "but still depth-bounded");
    }
}
