//! Sound state-space reductions: symmetry quotient over interchangeable
//! nodes, and the choice profiles behind the sleep-set partial-order
//! reduction.
//!
//! # Symmetry
//!
//! Two processes are *interchangeable* when transposing them is an
//! automorphism of the whole initial configuration: the knowledge graph
//! maps onto itself, each process's slice family maps onto the transposed
//! process's family (member ids renamed), inputs agree, and the adversary
//! role is preserved. Verified transpositions generate a product of
//! symmetric groups (one factor per interchangeability class); every
//! element of that group maps reachable states to reachable states of the
//! *same depth and safety verdict*, because the protocol actors treat
//! process ids opaquely (SCP nodes compare and store ids but never order
//! behaviour on their numeric values) and the explorer's untimed semantics
//! carries no id-dependent scheduling.
//!
//! The quotient is taken by hashing: the canonical hash of a state is the
//! **minimum over the group** of the renamed state hashes
//! ([`ExploreSim::state_hash_perm`]). Sorting per-node sub-fingerprints
//! alone would *not* be a sound quotient — node A's tally mentions node
//! B's id, so renaming must be applied to the entire state, which the
//! min-over-group does.
//!
//! Restrictions, each load-bearing for soundness:
//!
//! - **Equivocate / forged-slice adversaries disable symmetry.** The
//!   equivocator picks victims by enumeration parity, so transposing two
//!   correct victims does not map its behaviour onto itself; a quotient
//!   would merge genuinely distinct attack schedules.
//! - **Silent faulty pairs ignore inputs** (a silent actor never reads
//!   one); every other pair must agree on inputs.
//! - The permutation group is capped ([`GROUP_CAP`]); oversized classes
//!   simply contribute nothing (identity-only), which is always sound.
//!
//! # Sleep-set independence
//!
//! [`ChoiceProfile`] carries what the sleep-set machinery in
//! [`crate::explorer`] needs to decide whether two enabled events
//! commute: deliveries to **distinct recipients** always do (disjoint
//! state footprints, append-only pending multiset — the commuting-diamond
//! property the hash collapse already relies on), and a delivery that is
//! **threshold-inert** ([`scup_sim::Actor::threshold_inert`]) commutes
//! even with siblings at the *same* recipient. Inertness additionally
//! requires a correct origin: a Byzantine origin could later re-announce
//! different slices, making the registry write order observable.

use scup_graph::{sink, ProcessId, ProcessSet};
use scup_harness::scenario::ProtocolSpec;
use scup_harness::AdversaryKind;
use scup_sim::{ExploreEvent, ExploreSim, Perm, SimMessage};

use crate::build::Setup;

/// Permutation-group size cap: 6 interchangeable nodes (720 renamed
/// hashes per state) is far beyond what exhaustible systems need, and the
/// cap keeps a degenerate all-symmetric scenario from hashing forever.
const GROUP_CAP: usize = 720;

/// The automorphism group of one scenario, precomputed by
/// [`Symmetry::compute`]. Trivial (identity-only) when the scenario has no
/// interchangeable nodes or symmetry is disabled.
#[derive(Debug, Clone)]
pub struct Symmetry {
    /// Every non-identity group element.
    perms: Vec<Perm>,
    /// Sizes of the interchangeability classes with at least two members.
    class_sizes: Vec<u64>,
}

impl Symmetry {
    /// The trivial (identity-only) group.
    pub fn trivial() -> Self {
        Symmetry {
            perms: Vec::new(),
            class_sizes: Vec::new(),
        }
    }

    /// Computes the interchangeability classes of `setup` by verifying
    /// transpositions, and expands them into the full permutation group
    /// (product of per-class symmetric groups, capped at [`GROUP_CAP`]).
    pub fn compute(setup: &Setup) -> Self {
        // Victim-parity adversaries break node interchangeability; see the
        // module docs.
        if !setup.faulty.is_empty()
            && !matches!(
                setup.adversary,
                AdversaryKind::Silent | AdversaryKind::Crash { .. } | AdversaryKind::Echo
            )
        {
            return Symmetry::trivial();
        }
        // BFT-CUP breaks id-opacity *inside the sink*: the view leader is
        // picked by the numeric order of the member ids (`leader(v) =
        // sorted(members)[v mod |members|]`), so transposing two sink
        // members does not map runs onto runs — renaming the ids does not
        // rename the leader schedule. Processes outside the sink never
        // enter the leader rotation (discovery, asking and `f + 1`
        // adoption are all set-based), so their transpositions remain
        // sound. No unique sink ⇒ no sound class at all.
        let bft_nonsink: Option<ProcessSet> = match setup.protocol {
            ProtocolSpec::BftCup => match sink::unique_sink(setup.kg.graph()) {
                Some(v_sink) => Some(setup.kg.graph().vertex_set().difference(&v_sink)),
                None => return Symmetry::trivial(),
            },
            _ => None,
        };

        let n = setup.kg.n();
        // Union-find over verified transpositions.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for j in i + 1..n {
                if let Some(nonsink) = &bft_nonsink {
                    if !nonsink.contains(ProcessId::new(i as u32))
                        || !nonsink.contains(ProcessId::new(j as u32))
                    {
                        continue;
                    }
                }
                if find(&mut parent, i) != find(&mut parent, j)
                    && transposition_ok(setup, i as u32, j as u32)
                {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
            }
        }
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            match classes.iter_mut().find(|c| {
                let head = c[0] as usize;
                find(&mut parent, head) == root
            }) {
                Some(class) => class.push(i as u32),
                None => classes.push(vec![i as u32]),
            }
        }
        classes.retain(|c| c.len() > 1);

        // Expand the product of symmetric groups, smallest classes first,
        // stopping before the cap (dropping a class is always sound).
        classes.sort_by_key(Vec::len);
        let mut group: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        let mut class_sizes = Vec::new();
        for class in &classes {
            let factor: usize = (1..=class.len()).product();
            if group.len() * factor > GROUP_CAP {
                break;
            }
            class_sizes.push(class.len() as u64);
            let arrangements = permutations_of(class);
            let mut expanded = Vec::with_capacity(group.len() * arrangements.len());
            for base in &group {
                for arrangement in &arrangements {
                    let mut map = base.clone();
                    for (slot, &member) in class.iter().zip(arrangement) {
                        map[*slot as usize] = member;
                    }
                    expanded.push(map);
                }
            }
            group = expanded;
        }

        let perms = group
            .into_iter()
            .map(Perm::from_map)
            .filter(|p| !p.is_identity())
            .collect();
        Symmetry { perms, class_sizes }
    }

    /// Group order, identity included.
    pub fn group_order(&self) -> u64 {
        self.perms.len() as u64 + 1
    }

    /// Sizes of the nontrivial interchangeability classes.
    pub fn class_sizes(&self) -> &[u64] {
        &self.class_sizes
    }

    /// `true` when only the identity remains.
    pub fn is_trivial(&self) -> bool {
        self.perms.is_empty()
    }

    /// The canonical (minimum-over-group) state hash, the state's own
    /// (identity) hash, and whether the state's orbit under the group is
    /// nontrivial (some renaming yields a different state) — the
    /// per-state "symmetry hit" statistic. Orbit nontriviality is
    /// invariant across the orbit, so the flag is a pure function of the
    /// *canonical* state — deterministic however the class was first
    /// reached. The identity hash identifies the concrete orbit member:
    /// sleep-set covers are only comparable within one member's frame
    /// (event hashes mention concrete process ids).
    pub fn canonical_hash<M: SimMessage>(&self, sim: &ExploreSim<M>) -> (u128, u128, bool) {
        let identity = self.identity_hash(sim);
        let (min, moved) = self.canonicalize_from(sim, identity);
        (min, identity, moved)
    }

    /// The state's own (identity-permutation) hash — the *fingerprint*
    /// half of [`Symmetry::canonical_hash`], split out so the explorer's
    /// phase profiler can time it separately from the group sweep.
    pub fn identity_hash<M: SimMessage>(&self, sim: &ExploreSim<M>) -> u128 {
        sim.state_hash()
    }

    /// The min-over-group sweep from a precomputed identity hash — the
    /// *canonicalize* half of [`Symmetry::canonical_hash`]. Returns the
    /// canonical hash and the orbit-nontriviality flag.
    pub fn canonicalize_from<M: SimMessage>(
        &self,
        sim: &ExploreSim<M>,
        identity: u128,
    ) -> (u128, bool) {
        let mut min = identity;
        let mut moved = false;
        for p in &self.perms {
            let h = sim.state_hash_perm(p);
            moved |= h != identity;
            if h < min {
                min = h;
            }
        }
        (min, moved)
    }
}

/// Verifies that transposing `i` and `j` is an automorphism of the
/// initial configuration.
fn transposition_ok(setup: &Setup, i: u32, j: u32) -> bool {
    let (pi, pj) = (ProcessId::new(i), ProcessId::new(j));
    let faulty_i = setup.faulty.contains(pi);
    if faulty_i != setup.faulty.contains(pj) {
        return false;
    }
    // Silent/echo faulty processes never read their input; everyone else
    // must agree on it (crash adversaries wrap a live node, so inputs
    // matter).
    let inputless_pair =
        faulty_i && matches!(setup.adversary, AdversaryKind::Silent | AdversaryKind::Echo);
    if !inputless_pair && setup.inputs[pi.index()] != setup.inputs[pj.index()] {
        return false;
    }
    let swap = |s: &ProcessSet| -> ProcessSet {
        s.iter()
            .map(|p| {
                if p == pi {
                    pj
                } else if p == pj {
                    pi
                } else {
                    p
                }
            })
            .collect()
    };
    let swap_id = |u: usize| -> usize {
        if u == pi.index() {
            pj.index()
        } else if u == pj.index() {
            pi.index()
        } else {
            u
        }
    };
    for u in 0..setup.kg.n() {
        // Knowledge graph: π(PD(u)) = PD(π(u)).
        let pd_mapped = swap(setup.kg.pd(ProcessId::new(u as u32)));
        if &pd_mapped != setup.kg.pd(ProcessId::new(swap_id(u) as u32)) {
            return false;
        }
        // Slices: renaming u's family must yield π(u)'s family verbatim
        // (slice order included — the explorer hashes families as values).
        // Protocols without pre-computed slices (BFT-CUP, full stack)
        // derive every slice-like structure deterministically from the
        // graph, whose symmetry the PD check above already verifies.
        if setup.slices.is_empty() {
            continue;
        }
        let fam = &setup.slices[u];
        let fam_mapped = match fam {
            scup_fbqs::SliceFamily::Explicit(slices) => {
                scup_fbqs::SliceFamily::Explicit(slices.iter().map(&swap).collect())
            }
            scup_fbqs::SliceFamily::AllSubsets { of, size } => scup_fbqs::SliceFamily::AllSubsets {
                of: swap(of),
                size: *size,
            },
        };
        if fam_mapped != setup.slices[swap_id(u)] {
            return false;
        }
    }
    true
}

/// All arrangements of `items` (Heap's algorithm), deterministic order.
fn permutations_of(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    fn heap(k: usize, work: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if k <= 1 {
            out.push(work.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, work, out);
            if k.is_multiple_of(2) {
                work.swap(i, k - 1);
            } else {
                work.swap(0, k - 1);
            }
        }
    }
    heap(work.len(), &mut work, &mut out);
    out
}

/// What the sleep-set machinery needs to know about one enabled choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceProfile {
    /// The canonical event hash (sleep sets are matched by hash, so a
    /// re-created identical delivery stays asleep — it leads exactly where
    /// the sleeping copy leads).
    pub hash: u128,
    /// The event's recipient.
    pub recipient: u32,
    /// Threshold-inert delivery from a correct origin (see module docs).
    pub inert: bool,
}

impl ChoiceProfile {
    /// Profiles pending event `idx` of `sim`. `sleep_enabled` gates the
    /// (non-free) inertness probe; with sleep sets off every event is
    /// profiled as non-inert.
    pub fn of<D: crate::build::Driver>(
        driver: &D,
        sim: &ExploreSim<D::Msg>,
        idx: usize,
        sleep_enabled: bool,
    ) -> Self {
        let event = sim.pending_at(idx);
        let inert = sleep_enabled
            && match event {
                ExploreEvent::Deliver { from, msg, .. } => {
                    let origin = driver.msg_origin(*from, msg);
                    let correct = !driver.setup().faulty.contains(origin);
                    driver.inert_origin_ok(correct, msg) && sim.is_threshold_inert(idx)
                }
                ExploreEvent::Timer { .. } => false,
            };
        ChoiceProfile {
            hash: sim.pending_hash(idx),
            recipient: event.recipient().as_u32(),
            inert,
        }
    }

    /// The dynamic independence relation: distinct recipients always
    /// commute; same-recipient deliveries commute when either is
    /// threshold-inert.
    pub fn independent(&self, other: &ChoiceProfile) -> bool {
        self.recipient != other.recipient || self.inert || other.inert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_cover_factorial() {
        assert_eq!(permutations_of(&[1]).len(), 1);
        assert_eq!(permutations_of(&[1, 2]).len(), 2);
        let p3 = permutations_of(&[0, 1, 2]);
        assert_eq!(p3.len(), 6);
        let mut sorted = p3.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "all distinct");
    }

    #[test]
    fn perm_roundtrip() {
        let p = Perm::from_map(vec![2, 1, 0, 3]);
        assert!(!p.is_identity());
        assert_eq!(p.apply(ProcessId::new(0)), ProcessId::new(2));
        assert_eq!(p.apply_inv(ProcessId::new(2)), ProcessId::new(0));
        assert_eq!(p.apply(ProcessId::new(9)), ProcessId::new(9));
        assert_eq!(
            p.apply_set(&ProcessSet::from_ids([0, 3])),
            ProcessSet::from_ids([2, 3])
        );
    }
}
