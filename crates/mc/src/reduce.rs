//! Sound state-space reductions: symmetry quotient over interchangeable
//! nodes (full permutations, not just transpositions), and the choice
//! profiles behind the sleep-set partial-order reduction.
//!
//! # Symmetry
//!
//! A permutation `π` of the processes is *admissible* when it is an
//! automorphism of the whole initial configuration: the knowledge graph
//! maps onto itself (`π(PD(u)) = PD(π(u))`), each process's slice family
//! maps onto the image process's family (member ids renamed, slice order
//! preserved), inputs agree, the adversary role is preserved — and, for
//! value-injecting adversaries, the victim-split parity is preserved (see
//! below). Every admissible permutation maps reachable states to
//! reachable states of the *same depth and safety verdict*, because the
//! protocol actors treat process ids opaquely (SCP nodes compare and
//! store ids but never order behaviour on their numeric values) and the
//! explorer's untimed semantics carries no id-dependent scheduling.
//!
//! Candidates are enumerated structurally: processes are grouped into
//! classes by a cheap invariant signature (faulty role, input, PD size,
//! in-degree, self-knowledge, slice shape) that any admissible
//! permutation must preserve, and the product of per-class symmetric
//! groups (capped at [`GROUP_CAP`], smallest classes first) is filtered
//! by full verification of **every** candidate. This finds *rotations* —
//! the directed 3-cycle sink has no valid transposition at all, but its
//! two rotations are admissible — where the previous
//! transposition-generated union-find could not. The verified set is the
//! intersection of three groups (the automorphism group, the candidate
//! product group, and the victim-parity-admissible group), hence itself a
//! group; classes dropped by the cap are **counted** and surfaced in the
//! report (`dropped_classes` / `dropped_arrangements`) — never silent.
//!
//! The quotient is taken by hashing: the canonical hash of a state is the
//! **minimum over the group** of the renamed state hashes
//! ([`ExploreSim::state_hash_perm`]), each mixed with the renamed
//! adversary *variant*. Sorting per-node sub-fingerprints alone would
//! *not* be a sound quotient — node A's tally mentions node B's id, so
//! renaming must be applied to the entire state, which the min-over-group
//! does.
//!
//! ## The victim-split quotient
//!
//! Value-injecting adversaries (`equivocate`, `forged-slice`) pick
//! victims by enumeration parity over the adversary's live `known` set:
//! victim at enumeration index `i` receives `values[(i + split) % 2]`,
//! where `split` is the explored variant. Renaming processes permutes
//! enumeration indices, so a permutation is only sound if it shifts
//! every victim's parity by one *constant* `c ∈ {0, 1}` — then the
//! quotient identifies `(state, variant)` with `(π(state),
//! (variant + c) mod 2)`, and the canonical hash permutes the variant
//! index *with* the nodes.
//!
//! The adversary's `known` set is **dynamic** (delivery auto-learns the
//! sender), so the shift must be constant for every reachable knowledge
//! set `K ⊇ F`, where `F = PD(adversary)` is its initial knowledge. The
//! exact admissibility condition (derived from the index-shift algebra
//! `D(K, j) = Σ_{k∈K} inv(k, j)`):
//!
//! 1. every inversion pair of `π` lies inside `F × F` (pairs involving
//!    the adversary itself are exempt when it is outside its own `F` —
//!    it never enters its own knowledge); then later-learned processes
//!    never move any victim's index parity;
//! 2. the parity shift `D(F, j) mod 2` is one constant `c` over the
//!    initial victims `j ∈ F \ {adversary}`;
//! 3. if any process outside `F` can ever be learned (conservatively:
//!    one exists), late victims force `c = 0`.
//!
//! Shifts compose additively mod 2, so the admissible set is a group.
//! For BFT-CUP's equivocating leader the victims are the sink members,
//! which candidate classes exclude (see below) — every victim is fixed
//! and the shift is 0 by construction.
//!
//! Remaining restrictions, each load-bearing for soundness:
//!
//! - **Value-injecting adversaries are fixed pointwise** (excluded from
//!   candidate classes): their in-flight forged messages embed their own
//!   id in slice families.
//! - **Silent/echo faulty pairs ignore inputs** (a silent actor never
//!   reads one); every other pair must agree on inputs.
//! - **BFT-CUP classes exclude the sink**: the view leader is picked by
//!   the numeric order of the member ids (`leader(v) =
//!   sorted(members)[v mod |members|]`), so renaming sink members does
//!   not rename the leader schedule. Processes outside the sink never
//!   enter the leader rotation (discovery, asking and `f + 1` adoption
//!   are all set-based). No unique sink ⇒ no sound class at all.
//! - The candidate enumeration is capped ([`GROUP_CAP`]); oversized
//!   classes contribute nothing (identity-only), which is always sound —
//!   and now counted.
//!
//! # Sleep-set independence
//!
//! [`ChoiceProfile`] carries what the sleep-set machinery in
//! [`crate::explorer`] needs to decide whether two enabled events
//! commute: deliveries to **distinct recipients** always do (disjoint
//! state footprints, append-only pending multiset — the commuting-diamond
//! property the hash collapse already relies on), and a delivery that is
//! **threshold-inert** ([`scup_sim::Actor::threshold_inert`]) commutes
//! even with siblings at the *same* recipient. Inertness additionally
//! requires a correct origin: a Byzantine origin could later re-announce
//! different slices, making the registry write order observable.

use scup_graph::{sink, ProcessId, ProcessSet};
use scup_harness::scenario::ProtocolSpec;
use scup_harness::AdversaryKind;
use scup_sim::{ExploreEvent, ExploreSim, Perm, SimMessage};

use crate::build::Setup;

/// Permutation-group size cap: 6 interchangeable nodes (720 renamed
/// hashes per state) is far beyond what exhaustible systems need, and the
/// cap keeps a degenerate all-symmetric scenario from hashing forever.
const GROUP_CAP: usize = 720;

/// Mixes the adversary variant into a state hash. Variant 0 is the
/// identity (single-variant scenarios hash exactly as before); distinct
/// variants of an otherwise identical state land on distinct hashes —
/// the engine-level replacement for fingerprinting the adversary's
/// `split` field, which the victim-split quotient must be free to
/// permute.
#[inline]
fn mix_variant(h: u128, variant: u32) -> u128 {
    h ^ 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835u128.wrapping_mul(variant as u128)
}

/// The admissible permutation group of one scenario, precomputed by
/// [`Symmetry::compute`]. Trivial (identity-only) when the scenario has
/// no interchangeable nodes or symmetry is disabled.
#[derive(Debug, Clone)]
pub struct Symmetry {
    /// Every non-identity group element.
    perms: Vec<Perm>,
    /// Per-perm variant shift (parallel to `perms`): the canonical hash
    /// of `(state, v)` under perm `i` uses variant `(v + shifts[i]) mod
    /// variants`.
    shifts: Vec<u32>,
    /// Number of adversary variants the scenario explores (hash-mixing
    /// modulus; 1 ⇒ mixing is the identity).
    variants: u32,
    /// Sizes of the node orbits (≥ 2 members) under the verified group.
    class_sizes: Vec<u64>,
    /// Candidate classes never expanded because of [`GROUP_CAP`].
    dropped_classes: u64,
    /// Non-identity arrangements those dropped classes would have
    /// contributed (Σ (|class|! − 1)).
    dropped_arrangements: u64,
}

impl Symmetry {
    /// The trivial (identity-only) group for a single-variant scenario.
    pub fn trivial() -> Self {
        Symmetry {
            perms: Vec::new(),
            shifts: Vec::new(),
            variants: 1,
            class_sizes: Vec::new(),
            dropped_classes: 0,
            dropped_arrangements: 0,
        }
    }

    /// The trivial group for `setup` — identity-only, but still mixing
    /// the scenario's variant count into every hash. Unreduced
    /// (symmetry-off) exploration of a multi-variant scenario must keep
    /// `(state, variant)` pairs distinct even though the adversary's
    /// `split` is no longer part of the actor fingerprint.
    pub fn trivial_for(setup: &Setup) -> Self {
        Symmetry {
            variants: setup.variants(),
            ..Symmetry::trivial()
        }
    }

    /// Computes the admissible permutation group of `setup`: candidate
    /// classes by invariant signature, product-of-symmetric-groups
    /// enumeration (capped at [`GROUP_CAP`], drops counted), then full
    /// verification of every candidate — automorphism of graph, slices,
    /// inputs and adversary role, plus victim-split admissibility for
    /// value-injecting adversaries.
    pub fn compute(setup: &Setup) -> Self {
        let variants = setup.variants();
        let value_injecting = !matches!(
            setup.adversary,
            AdversaryKind::Silent | AdversaryKind::Crash { .. } | AdversaryKind::Echo
        );
        // BFT-CUP: sink members are pinned (see module docs); no unique
        // sink ⇒ no sound class at all.
        let bft_sink: Option<ProcessSet> = match setup.protocol {
            ProtocolSpec::BftCup => match sink::unique_sink(setup.kg.graph()) {
                Some(v_sink) => Some(v_sink),
                None => return Symmetry::trivial_for(setup),
            },
            _ => None,
        };

        let n = setup.kg.n();
        let mut indegree = vec![0usize; n];
        for u in 0..n {
            for p in setup.kg.pd(ProcessId::new(u as u32)).iter() {
                indegree[p.index()] += 1;
            }
        }

        // Candidate classes: nodes sharing every cheap invariant any
        // admissible permutation must preserve. Verification of each
        // candidate does the exact (graph/slice/parity) work.
        type Signature = (bool, Option<u64>, usize, usize, bool, Vec<u64>);
        let mut classes: Vec<(Signature, Vec<u32>)> = Vec::new();
        for (i, &deg) in indegree.iter().enumerate() {
            let pid = ProcessId::new(i as u32);
            let faulty = setup.faulty.contains(pid);
            // Value-injecting adversaries stay pinned; so do BFT-CUP
            // sink members.
            if (faulty && value_injecting) || bft_sink.as_ref().is_some_and(|s| s.contains(pid)) {
                continue;
            }
            let inputless =
                faulty && matches!(setup.adversary, AdversaryKind::Silent | AdversaryKind::Echo);
            let input = (!inputless).then(|| setup.inputs[i]);
            let pd = setup.kg.pd(pid);
            let slice_shape: Vec<u64> = if setup.slices.is_empty() {
                Vec::new()
            } else {
                match &setup.slices[i] {
                    scup_fbqs::SliceFamily::Explicit(slices) => {
                        let mut sizes: Vec<u64> = slices.iter().map(|s| s.len() as u64).collect();
                        sizes.sort_unstable();
                        sizes
                    }
                    scup_fbqs::SliceFamily::AllSubsets { of, size } => {
                        vec![u64::MAX, of.len() as u64, *size as u64]
                    }
                }
            };
            let sig: Signature = (faulty, input, pd.len(), deg, pd.contains(pid), slice_shape);
            match classes.iter_mut().find(|(s, _)| *s == sig) {
                Some((_, members)) => members.push(i as u32),
                None => classes.push((sig, vec![i as u32])),
            }
        }
        let mut classes: Vec<Vec<u32>> = classes
            .into_iter()
            .map(|(_, m)| m)
            .filter(|m| m.len() > 1)
            .collect();

        // Expand the product of symmetric groups, smallest classes first,
        // stopping before the cap. Dropping a class is always sound — and
        // always counted.
        classes.sort_by_key(Vec::len);
        let mut candidates: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        let mut dropped_classes = 0u64;
        let mut dropped_arrangements = 0u64;
        for class in &classes {
            let factor: usize = (1..=class.len()).product();
            if candidates.len() * factor > GROUP_CAP {
                dropped_classes += 1;
                dropped_arrangements += factor as u64 - 1;
                continue;
            }
            let arrangements = permutations_of(class);
            let mut expanded = Vec::with_capacity(candidates.len() * arrangements.len());
            for base in &candidates {
                for arrangement in &arrangements {
                    let mut map = base.clone();
                    for (slot, &member) in class.iter().zip(arrangement) {
                        map[*slot as usize] = member;
                    }
                    expanded.push(map);
                }
            }
            candidates = expanded;
        }

        // Verify every candidate. The survivors form the intersection of
        // three groups (automorphisms ∩ candidate product ∩
        // parity-admissible), hence a group.
        let mut perms = Vec::new();
        let mut shifts = Vec::new();
        for map in candidates {
            if map.iter().enumerate().all(|(i, &m)| i as u32 == m) {
                continue; // identity
            }
            if !permutation_ok(setup, &map) {
                continue;
            }
            let Some(shift) = victim_shift(setup, &map, variants) else {
                continue;
            };
            perms.push(Perm::from_map(map));
            shifts.push(shift);
        }

        // Interchangeability classes = node orbits of the verified group.
        let mut orbit: Vec<usize> = (0..n).collect();
        for p in &perms {
            for i in 0..n {
                let j = p.apply(ProcessId::new(i as u32)).index();
                let (ri, rj) = (orbit_find(&mut orbit, i), orbit_find(&mut orbit, j));
                if ri != rj {
                    orbit[ri] = rj;
                }
            }
        }
        let mut orbit_sizes = vec![0u64; n];
        for i in 0..n {
            orbit_sizes[orbit_find(&mut orbit, i)] += 1;
        }
        let mut class_sizes: Vec<u64> = orbit_sizes.into_iter().filter(|&s| s > 1).collect();
        class_sizes.sort_unstable();

        Symmetry {
            perms,
            shifts,
            variants,
            class_sizes,
            dropped_classes,
            dropped_arrangements,
        }
    }

    /// Group order, identity included.
    pub fn group_order(&self) -> u64 {
        self.perms.len() as u64 + 1
    }

    /// Sizes of the nontrivial node orbits under the verified group.
    pub fn class_sizes(&self) -> &[u64] {
        &self.class_sizes
    }

    /// Candidate classes never expanded because of [`GROUP_CAP`].
    pub fn dropped_classes(&self) -> u64 {
        self.dropped_classes
    }

    /// Non-identity arrangements the dropped classes would have
    /// contributed.
    pub fn dropped_arrangements(&self) -> u64 {
        self.dropped_arrangements
    }

    /// `true` when only the identity remains.
    pub fn is_trivial(&self) -> bool {
        self.perms.is_empty()
    }

    /// The canonical (minimum-over-group) hash of `(state, variant)`,
    /// the pair's own (identity) hash, and whether its orbit under the
    /// group is nontrivial (some renaming yields a different pair) — the
    /// per-state "symmetry hit" statistic. Orbit nontriviality is
    /// invariant across the orbit, so the flag is a pure function of the
    /// *canonical* state — deterministic however the class was first
    /// reached. The identity hash identifies the concrete orbit member:
    /// sleep-set covers are only comparable within one member's frame
    /// (event hashes mention concrete process ids).
    pub fn canonical_hash<M: SimMessage>(
        &self,
        sim: &ExploreSim<M>,
        variant: u32,
    ) -> (u128, u128, bool) {
        let identity = self.identity_hash(sim, variant);
        let (min, moved) = self.canonicalize_from(sim, variant, identity);
        (min, identity, moved)
    }

    /// The pair's own (identity-permutation) hash — the *fingerprint*
    /// half of [`Symmetry::canonical_hash`], split out so the explorer's
    /// phase profiler can time it separately from the group sweep.
    pub fn identity_hash<M: SimMessage>(&self, sim: &ExploreSim<M>, variant: u32) -> u128 {
        mix_variant(sim.state_hash(), variant)
    }

    /// The min-over-group sweep from a precomputed identity hash — the
    /// *canonicalize* half of [`Symmetry::canonical_hash`]. Each group
    /// element renames the state *and* shifts the variant index by its
    /// recorded parity shift. Returns the canonical hash and the
    /// orbit-nontriviality flag.
    pub fn canonicalize_from<M: SimMessage>(
        &self,
        sim: &ExploreSim<M>,
        variant: u32,
        identity: u128,
    ) -> (u128, bool) {
        let mut min = identity;
        let mut moved = false;
        for (p, &shift) in self.perms.iter().zip(&self.shifts) {
            let v = if self.variants > 1 {
                (variant + shift) % self.variants
            } else {
                variant
            };
            let h = mix_variant(sim.state_hash_perm(p), v);
            moved |= h != identity;
            if h < min {
                min = h;
            }
        }
        (min, moved)
    }
}

fn orbit_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Verifies that `map` (as `π(i) = map[i]`) is an automorphism of the
/// initial configuration: faulty role preserved (value-injecting faulty
/// fixed pointwise), inputs agree (mod silent/echo inputlessness),
/// `π(PD(u)) = PD(π(u))`, and each slice family maps verbatim onto the
/// image process's family.
fn permutation_ok(setup: &Setup, map: &[u32]) -> bool {
    let value_injecting = !matches!(
        setup.adversary,
        AdversaryKind::Silent | AdversaryKind::Crash { .. } | AdversaryKind::Echo
    );
    let apply = |p: ProcessId| ProcessId::new(map[p.index()]);
    let apply_set = |s: &ProcessSet| -> ProcessSet { s.iter().map(apply).collect() };
    for (u, &mu) in map.iter().enumerate() {
        let pu = ProcessId::new(u as u32);
        let image = mu as usize;
        let faulty_u = setup.faulty.contains(pu);
        if faulty_u != setup.faulty.contains(ProcessId::new(mu)) {
            return false;
        }
        if faulty_u && value_injecting && image != u {
            // An equivocator's forged slice family is `{{self}}` — its
            // own id is part of its in-flight messages.
            return false;
        }
        // Silent/echo faulty processes never read their input; everyone
        // else must agree on it (crash adversaries wrap a live node, so
        // inputs matter).
        let inputless =
            faulty_u && matches!(setup.adversary, AdversaryKind::Silent | AdversaryKind::Echo);
        if !inputless && setup.inputs[u] != setup.inputs[image] {
            return false;
        }
        // Knowledge graph: π(PD(u)) = PD(π(u)).
        if apply_set(setup.kg.pd(pu)) != *setup.kg.pd(ProcessId::new(mu)) {
            return false;
        }
        // Slices: renaming u's family must yield π(u)'s family verbatim
        // (slice order included — the explorer hashes families as
        // values). Protocols without pre-computed slices (BFT-CUP, full
        // stack) derive every slice-like structure deterministically
        // from the graph, whose symmetry the PD check above already
        // verifies.
        if setup.slices.is_empty() {
            continue;
        }
        let fam_mapped = match &setup.slices[u] {
            scup_fbqs::SliceFamily::Explicit(slices) => {
                scup_fbqs::SliceFamily::Explicit(slices.iter().map(apply_set).collect())
            }
            scup_fbqs::SliceFamily::AllSubsets { of, size } => scup_fbqs::SliceFamily::AllSubsets {
                of: apply_set(of),
                size: *size,
            },
        };
        if fam_mapped != setup.slices[image] {
            return false;
        }
    }
    true
}

/// The victim-split parity shift of `map`, or `None` when the
/// permutation is inadmissible under a value-injecting adversary. See
/// the module docs for the derivation. `Some(0)` for single-variant
/// scenarios (nothing to shift) and for BFT-CUP (victims — the sink
/// members — are fixed pointwise by every candidate).
fn victim_shift(setup: &Setup, map: &[u32], variants: u32) -> Option<u32> {
    if variants <= 1 {
        return Some(0);
    }
    let n = setup.kg.n();
    if setup.protocol == ProtocolSpec::BftCup {
        // The equivocating leader enumerates its discovered member set —
        // the sink, which candidate classes pin pointwise. Verify rather
        // than assume.
        let sink = sink::unique_sink(setup.kg.graph())?;
        for v in sink.iter() {
            if map[v.index()] != v.as_u32() {
                return None;
            }
        }
        return Some(0);
    }
    // SCP equivocators: one per faulty node, enumerating its live
    // `known` set, which starts at F = PD(adversary) and grows as
    // deliveries auto-learn senders.
    let mut shift: Option<u32> = None;
    for u in setup.faulty.iter() {
        let f = setup.kg.pd(u);
        // (1) Every inversion of `map` confined to F × F. Pairs
        // involving the adversary itself are exempt when it is outside
        // its own F — it never enters its own knowledge (learn() skips
        // self, and it never receives a message from itself).
        let u_in_f = f.contains(u);
        for x in 0..n {
            for y in x + 1..n {
                if map[x] <= map[y] {
                    continue;
                }
                let (px, py) = (ProcessId::new(x as u32), ProcessId::new(y as u32));
                if !u_in_f && (px == u || py == u) {
                    continue;
                }
                if !f.contains(px) || !f.contains(py) {
                    return None;
                }
            }
        }
        // (2) Constant parity shift over the initial victims.
        let mut c_u: Option<u32> = None;
        for j in f.iter() {
            if j == u {
                continue;
            }
            let mut d: i64 = 0;
            for k in f.iter() {
                if k.index() > j.index() && map[k.index()] < map[j.index()] {
                    d += 1;
                }
                if k.index() < j.index() && map[k.index()] > map[j.index()] {
                    d -= 1;
                }
            }
            let c = d.rem_euclid(2) as u32;
            match c_u {
                None => c_u = Some(c),
                Some(prev) if prev != c => return None,
                _ => {}
            }
        }
        // (3) Late-learned victims shift by 0; any process outside
        // F ∪ {u} forces c = 0 (conservatively reachable).
        let outsiders = (0..n).any(|p| {
            let pid = ProcessId::new(p as u32);
            pid != u && !f.contains(pid)
        });
        if outsiders {
            match c_u {
                Some(1) => return None,
                _ => c_u = Some(0),
            }
        }
        // (4) All equivocators share the one global variant index.
        if let Some(c) = c_u {
            match shift {
                None => shift = Some(c),
                Some(prev) if prev != c => return None,
                _ => {}
            }
        }
    }
    Some(shift.unwrap_or(0))
}

/// All arrangements of `items` (Heap's algorithm), deterministic order.
fn permutations_of(items: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    fn heap(k: usize, work: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if k <= 1 {
            out.push(work.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, work, out);
            if k.is_multiple_of(2) {
                work.swap(i, k - 1);
            } else {
                work.swap(0, k - 1);
            }
        }
    }
    heap(work.len(), &mut work, &mut out);
    out
}

/// What the sleep-set machinery needs to know about one enabled choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceProfile {
    /// The canonical event hash (sleep sets are matched by hash, so a
    /// re-created identical delivery stays asleep — it leads exactly where
    /// the sleeping copy leads).
    pub hash: u128,
    /// The event's recipient.
    pub recipient: u32,
    /// Threshold-inert delivery from a correct origin (see module docs).
    pub inert: bool,
}

impl ChoiceProfile {
    /// Profiles pending event `idx` of `sim`. `sleep_enabled` gates the
    /// (non-free) inertness probe; with sleep sets off every event is
    /// profiled as non-inert.
    pub fn of<D: crate::build::Driver>(
        driver: &D,
        sim: &ExploreSim<D::Msg>,
        idx: usize,
        sleep_enabled: bool,
    ) -> Self {
        let event = sim.pending_at(idx);
        let inert = sleep_enabled
            && match event {
                ExploreEvent::Deliver { from, msg, .. } => {
                    let origin = driver.msg_origin(*from, msg);
                    let correct = !driver.setup().faulty.contains(origin);
                    driver.inert_origin_ok(correct, msg) && sim.is_threshold_inert(idx)
                }
                ExploreEvent::Timer { .. } => false,
            };
        ChoiceProfile {
            hash: sim.pending_hash(idx),
            recipient: event.recipient().as_u32(),
            inert,
        }
    }

    /// The dynamic independence relation: distinct recipients always
    /// commute; same-recipient deliveries commute when either is
    /// threshold-inert.
    pub fn independent(&self, other: &ChoiceProfile) -> bool {
        self.recipient != other.recipient || self.inert || other.inert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_cover_factorial() {
        assert_eq!(permutations_of(&[1]).len(), 1);
        assert_eq!(permutations_of(&[1, 2]).len(), 2);
        let p3 = permutations_of(&[0, 1, 2]);
        assert_eq!(p3.len(), 6);
        let mut sorted = p3.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "all distinct");
    }

    #[test]
    fn perm_roundtrip() {
        let p = Perm::from_map(vec![2, 1, 0, 3]);
        assert!(!p.is_identity());
        assert_eq!(p.apply(ProcessId::new(0)), ProcessId::new(2));
        assert_eq!(p.apply_inv(ProcessId::new(2)), ProcessId::new(0));
        assert_eq!(p.apply(ProcessId::new(9)), ProcessId::new(9));
        assert_eq!(
            p.apply_set(&ProcessSet::from_ids([0, 3])),
            ProcessSet::from_ids([2, 3])
        );
    }

    #[test]
    fn variant_mixing_keeps_variant_zero_stable() {
        assert_eq!(mix_variant(42, 0), 42, "variant 0 is the identity mix");
        assert_ne!(mix_variant(42, 1), 42);
        assert_ne!(mix_variant(42, 1), mix_variant(42, 0));
    }
}
