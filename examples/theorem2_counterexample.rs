//! The Theorem 2 counterexample, both statically (disjoint quorums) and
//! dynamically (SCP runs that externalize different values).
//!
//! Run: `cargo run --release --example theorem2_counterexample`

use scup_graph::{generators, ProcessSet};
use stellar_cup::attempts::LocalSliceStrategy;
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::theorems;

fn main() {
    let kg = generators::fig2();

    // Static: the violation witness of Theorem 2.
    let v = theorems::theorem2_violation(&kg, LocalSliceStrategy::AllButOne, 1)
        .expect("Fig. 2 must exhibit the violation");
    println!("Theorem 2 witness on Fig. 2 (0-based ids):");
    println!(
        "  Q1 = {}  Q2 = {}  |Q1 ∩ Q2| = {}",
        v.q1, v.q2, v.intersection_len
    );

    // Dynamic: run SCP with those local slices until a schedule splits the
    // two quorums.
    println!("searching for a disagreeing schedule...");
    for seed in 0..40u64 {
        let config = EndToEndConfig {
            seed,
            gst: 80,
            inputs: Some(vec![1, 1, 1, 1, 104, 105, 106]),
            ..EndToEndConfig::default()
        };
        let outcome = consensus::run_local_slices_pipeline(
            &kg,
            1,
            &ProcessSet::new(),
            LocalSliceStrategy::AllButOne,
            &config,
        );
        if outcome.decisions.iter().all(Option::is_some) && !outcome.agreement() {
            println!("  seed {seed}: AGREEMENT VIOLATED");
            for (i, d) in outcome.decisions.iter().enumerate() {
                println!("    node {} externalized {:?}", i + 1, d.unwrap());
            }
            println!("Stellar cannot solve consensus from PD_i and f alone (Corollary 1).");
            return;
        }
    }
    panic!("no disagreement found — increase the seed range");
}
