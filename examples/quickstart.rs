//! Quickstart: the paper's Fig. 1 example, end to end.
//!
//! Builds the 8-participant knowledge connectivity graph, inspects its sink,
//! checks the hand-crafted slices of Section III-D form a single maximal
//! consensus cluster, and runs SCP on it to externalize a value.
//!
//! Run: `cargo run --release --example quickstart`

use scup_fbqs::{cluster, paper, quorum};
use scup_graph::{generators, sink, ProcessId, ProcessSet};
use scup_scp::{ScpConfig, ScpNode};
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};

fn main() {
    // 1. The knowledge connectivity graph of Fig. 1 (0-based ids).
    let kg = generators::fig1();
    println!(
        "knowledge graph: {} processes, {} edges",
        kg.n(),
        kg.graph().edge_count()
    );

    let v_sink = sink::unique_sink(kg.graph()).expect("Fig. 1 has a unique sink");
    println!("sink component (0-based): {v_sink}");

    // 2. The Section III-D slice assignment, and the quorums it induces.
    let sys = paper::fig1_system();
    let w = paper::fig1_correct();
    let core = ProcessSet::from_ids([4, 5, 6]);
    println!("is_quorum({core}) = {}", quorum::is_quorum(&sys, &core));

    let maximal = cluster::maximal_consensus_clusters(
        &sys,
        &w,
        &w,
        cluster::IntertwinedMode::CorrectWitness,
        1 << 12,
    )
    .expect("Fig. 1 is small enough for the exhaustive check");
    println!("maximal consensus clusters: {maximal:?}");
    assert_eq!(
        maximal,
        vec![w.clone()],
        "all correct processes form the unique maximal cluster"
    );

    // 3. Run SCP: 7 correct nodes with the paper's slices, process 8 silent.
    let mut sim = Simulation::new(kg, NetworkConfig::partially_synchronous(150, 10, 1));
    for i in 0..7u32 {
        let i = ProcessId::new(i);
        sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(
            sys.slices(i).clone(),
            40 + i.as_u32() as u64,
        ))));
    }
    sim.add_actor(Box::new(SilentActor::new()));
    sim.run_while(
        |s| {
            !(0..7u32).all(|i| {
                s.actor_as::<ScpNode>(ProcessId::new(i))
                    .is_some_and(|n| n.externalized().is_some())
            })
        },
        2_000_000,
    );

    let mut value = None;
    for i in 0..7u32 {
        let node = sim.actor_as::<ScpNode>(ProcessId::new(i)).unwrap();
        let v = node
            .externalized()
            .expect("every correct node externalizes");
        println!("node {} externalized {v}", i + 1);
        match value {
            None => value = Some(v),
            Some(prev) => assert_eq!(prev, v, "agreement"),
        }
    }
    println!("consensus reached on {} in {}", value.unwrap(), sim.now());
}
