//! Byzantine-failure scenarios: the pipeline under silent and equivocating
//! adversaries, at the sink and outside it.
//!
//! Run: `cargo run --release --example byzantine_failures`

use scup_graph::{generators, sink, ProcessSet};
use stellar_cup::consensus::{self, EndToEndConfig, ScpAdversary};

fn main() {
    let kg = generators::fig2();
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    println!("Fig. 2 graph; sink = {v_sink} (0-based)");

    for faulty_id in 0..kg.n() as u32 {
        let faulty = ProcessSet::from_ids([faulty_id]);
        let where_ = if v_sink.contains(scup_graph::ProcessId::new(faulty_id)) {
            "sink"
        } else {
            "non-sink"
        };
        for adversary in [ScpAdversary::Silent, ScpAdversary::Equivocate] {
            let config = EndToEndConfig {
                seed: faulty_id as u64,
                adversary,
                ..EndToEndConfig::default()
            };
            let outcome = consensus::run_end_to_end(&kg, 1, &faulty, &config);
            assert!(
                outcome.agreement(),
                "faulty {faulty_id} ({where_}, {adversary:?}) must not break consensus"
            );
            println!(
                "faulty p{} ({where_:8}, {adversary:?}): agreement, value {:?}",
                faulty_id + 1,
                outcome.decided_value()
            );
        }
    }
    println!("one Byzantine process (f = 1) never breaks the sink-detector pipeline");
}
