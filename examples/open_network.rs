//! Open-network scenario: a random Byzantine-safe knowledge graph (the
//! CUP-minimal initial knowledge), the full paper pipeline — distributed
//! sink detection (Algorithm 3), slice construction (Algorithm 2), SCP —
//! and the resulting agreement.
//!
//! Run: `cargo run --release --example open_network`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::generators;
use stellar_cup::consensus::{self, EndToEndConfig};

fn main() {
    let f = 1;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Sink of 6, 10 outer processes; one random Byzantine process.
        let (kg, faulty) = generators::random_byzantine_safe(6, 10, f, &mut rng);
        let config = EndToEndConfig {
            seed,
            ..EndToEndConfig::default()
        };
        let outcome = consensus::run_end_to_end(&kg, f, &faulty, &config);

        println!("seed {seed}: n = {}, faulty = {}", kg.n(), faulty);
        println!(
            "  sink detection: {} messages, {} bytes, finished at {}",
            outcome.sd_report.messages_sent,
            outcome.sd_report.bytes_sent,
            outcome.sd_report.end_time
        );
        println!(
            "  SCP: {} messages, decided at {}",
            outcome.scp_report.messages_sent, outcome.scp_report.end_time
        );
        assert!(outcome.agreement(), "Theorem 5: consensus must hold");
        println!(
            "  agreement = {}, value = {:?}, validity = {}",
            outcome.agreement(),
            outcome.decided_value(),
            outcome.validity()
        );
    }
    println!("all seeds agreed — PD + f + sink detector suffice (Corollary 2)");
}
