//! "Can my network run Stellar with minimal knowledge?" — the operator-
//! facing API: feed a knowledge connectivity graph and a fault threshold,
//! get a structured verdict with the failing condition when the answer is
//! no.
//!
//! Run: `cargo run --release --example verify_network`

use scup_graph::generators;
use stellar_cup::report::verify_network;

fn main() {
    println!("--- Fig. 2 (the paper's 3-OSR example), f = 1 ---");
    print!("{}", verify_network(&generators::fig2(), 1));

    println!();
    println!("--- Fig. 1 (illustration only: 1-OSR), f = 1 ---");
    print!("{}", verify_network(&generators::fig1(), 1));

    println!();
    println!("--- Fig. 1, f = 0 ---");
    print!("{}", verify_network(&generators::fig1(), 0));

    println!();
    println!("--- Undersized sink (K3 core), f = 1 ---");
    print!("{}", verify_network(&generators::fig2_family(3, 4), 1));

    println!();
    println!("--- Random 40-process network, f = 2 ---");
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let config = generators::KosrConfig::new(12, 28, 3).with_extra_edges(0.05);
    let kg = generators::random_kosr(&config, &mut rng);
    print!("{}", verify_network(&kg, 2));
}
