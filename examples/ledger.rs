//! A replicated hash-chained ledger (the paper's future-work direction):
//! one knowledge-increasing phase, then repeated SCP slots reusing the
//! Algorithm-2 slices.
//!
//! Run: `cargo run --release --example ledger`

use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::generators;
use stellar_cup::consensus::EndToEndConfig;
use stellar_cup::ledger::{self, validate_chain};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let (kg, faulty) = generators::random_byzantine_safe(6, 6, 1, &mut rng);
    println!("network: n = {}, faulty = {faulty}", kg.n());

    let slots = 5;
    let outcome = ledger::run_ledger(&kg, 1, &faulty, slots, &EndToEndConfig::default());
    assert!(
        outcome.consistent(slots),
        "all correct processes hold the same chain"
    );

    let chain = outcome.chain().unwrap();
    assert!(validate_chain(chain));
    println!(
        "agreed chain ({} blocks, {} total messages):",
        chain.len(),
        outcome.total_messages
    );
    for block in chain {
        println!(
            "  slot {}: value {}  parent {:016x}  hash {:016x}",
            block.slot, block.value, block.parent, block.hash
        );
    }
    println!("ledger is consistent and hash-linked at every correct process");
}
