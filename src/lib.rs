//! Facade crate; see the workspace member crates for the actual library.
pub use scup_cup as cup;
pub use scup_fbqs as fbqs;
pub use scup_graph as graph;
pub use scup_harness as harness;
pub use scup_mc as mc;
pub use scup_scp as scp;
pub use scup_sim as sim;
pub use stellar_cup as core;
