#!/usr/bin/env python3
"""Fail when a benchmark's throughput regresses against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--prefix P] [--min-ratio R]

Both files are criterion-shim JSON arrays (objects with `name` and
`elems_per_sec`). Every baseline case whose name starts with the prefix
must appear in the current report with at least `min-ratio` of the
baseline throughput (default 0.7 — i.e. fail on a >30% regression).
Element counts are part of the case name, so a semantics change that
moves a state count shows up as a missing case, not a silently skewed
ratio.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return {e["name"]: e for e in json.load(f) if "elems_per_sec" in e}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--prefix", default="explore_states/")
    ap.add_argument("--min-ratio", type=float, default=0.7)
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []
    checked = 0
    for name, base in sorted(baseline.items()):
        if not name.startswith(args.prefix):
            continue
        checked += 1
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report "
                            f"(element count changed? re-baseline deliberately)")
            continue
        ratio = cur["elems_per_sec"] / base["elems_per_sec"]
        marker = "OK " if ratio >= args.min_ratio else "FAIL"
        print(f"{marker} {name}: {base['elems_per_sec']} -> "
              f"{cur['elems_per_sec']} elems/s ({ratio:.2f}x)")
        if ratio < args.min_ratio:
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(floor {args.min_ratio:.2f}x)")
    if checked == 0:
        failures.append(f"no baseline cases matched prefix {args.prefix!r}")
    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({checked} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
