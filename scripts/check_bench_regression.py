#!/usr/bin/env python3
"""Fail when a benchmark's throughput regresses against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json
        [--prefix P]... [--min-ratio R] [--warn-prefix W]... [--warn-ratio S]

Both files are criterion-shim JSON arrays (objects with `name`,
`ns_median`, and — for throughput rows — `elems_per_sec`).

Gated cases (`--prefix`, repeatable, default `explore_states/`): every
baseline case whose name starts with a prefix must appear in the current report with
at least `min-ratio` of the baseline throughput (default 0.7 — i.e. fail
on a >30% regression). Element counts are part of the case name, so a
semantics change that moves a state count shows up as a missing case,
not a silently skewed ratio.

Warn-only cases (`--warn-prefix`, repeatable — e.g. `explore_phases/`
plus `fault_plane/`): compared by
`ns_median` (lower is better) and printed with a WARN marker when the
current time exceeds `warn-ratio` × baseline (default 1.5), but never
fail the check — per-phase splits shift with allocator and machine, so
they inform rather than gate.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return {e["name"]: e for e in json.load(f)}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--prefix", action="append", default=None,
                    help="repeatable; each adds a gated prefix group")
    ap.add_argument("--min-ratio", type=float, default=0.7)
    ap.add_argument("--warn-prefix", action="append", default=None,
                    help="repeatable; each adds a warn-only prefix group")
    ap.add_argument("--warn-ratio", type=float, default=1.5)
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    prefixes = args.prefix or ["explore_states/"]
    failures = []
    checked = 0
    for name, base in sorted(baseline.items()):
        if not any(name.startswith(p) for p in prefixes) \
                or "elems_per_sec" not in base:
            continue
        checked += 1
        cur = current.get(name)
        if cur is None or "elems_per_sec" not in cur:
            failures.append(f"{name}: missing from current report "
                            f"(element count changed? re-baseline deliberately)")
            continue
        ratio = cur["elems_per_sec"] / base["elems_per_sec"]
        marker = "OK " if ratio >= args.min_ratio else "FAIL"
        print(f"{marker} {name}: {base['elems_per_sec']} -> "
              f"{cur['elems_per_sec']} elems/s ({ratio:.2f}x)")
        if ratio < args.min_ratio:
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(floor {args.min_ratio:.2f}x)")
    if checked == 0:
        failures.append(f"no baseline cases matched prefixes {prefixes!r}")

    if args.warn_prefix:
        warned = 0
        for name, base in sorted(baseline.items()):
            if not any(name.startswith(p) for p in args.warn_prefix):
                continue
            cur = current.get(name)
            if cur is None:
                print(f"WARN {name}: missing from current report")
                warned += 1
                continue
            ratio = cur["ns_median"] / max(base["ns_median"], 1)
            marker = "WARN" if ratio > args.warn_ratio else "ok  "
            print(f"{marker} {name}: {base['ns_median']} -> "
                  f"{cur['ns_median']} ns ({ratio:.2f}x)")
            if ratio > args.warn_ratio:
                warned += 1
        if warned:
            print(f"\n{warned} warn-only case(s) exceeded "
                  f"{args.warn_ratio:.2f}x; not failing the check")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({checked} gated cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
